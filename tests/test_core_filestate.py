"""Per-file baseline tracking: moves, links, lifecycle."""

import random

import pytest

from repro.core.filestate import FileStateCache
from repro.corpus.wordlists import paragraphs
from repro.fs import WinPath

DOC = WinPath(r"C:\Users\victim\Documents\report.pdf")
TEMP = WinPath(r"C:\Users\victim\AppData\Local\Temp\stage.tmp")


def _content(seed, n=9000):
    return paragraphs(random.Random(seed), n).encode()


@pytest.fixture
def cache():
    return FileStateCache()


class TestBaselineCapture:
    def test_ensure_captures_type_and_digest(self, cache):
        record = cache.ensure_baseline(1, DOC, _content(1))
        assert record.has_baseline
        assert record.base_type.name == "txt"
        assert record.base_digest is not None

    def test_second_ensure_keeps_original_baseline(self, cache):
        cache.ensure_baseline(1, DOC, _content(1))
        record = cache.ensure_baseline(1, DOC, b"changed content" * 100)
        assert record.base_size == len(_content(1))

    def test_refresh_replaces_baseline(self, cache):
        cache.ensure_baseline(1, DOC, _content(1))
        record = cache.refresh_baseline(1, DOC, _content(2))
        assert record.base_size == len(_content(2))

    def test_track_new_is_born_empty(self, cache):
        record = cache.track_new(5, DOC)
        assert record.born_empty and record.has_baseline
        assert record.base_digest is None

    def test_small_content_has_no_digest(self, cache):
        record = cache.ensure_baseline(1, DOC, b"x" * 100)
        assert record.has_baseline and record.base_digest is None

    def test_oversize_content_skips_digest(self):
        cache = FileStateCache(max_inspect_bytes=1000)
        record = cache.ensure_baseline(1, DOC, _content(1, 5000))
        assert record.base_digest is None
        assert record.base_type is not None    # type still identified

    def test_contains_and_len(self, cache):
        cache.ensure_baseline(1, DOC, _content(1))
        assert 1 in cache and len(cache) == 1


class TestMoves:
    def test_plain_rename_rekeys_path(self, cache):
        cache.ensure_baseline(1, DOC, _content(1))
        record = cache.on_rename(1, TEMP, None)
        assert record is not None
        assert record.path == TEMP
        assert record.base_size == len(_content(1))   # baseline survives

    def test_class_b_roundtrip_keeps_identity(self, cache):
        """Docs -> temp -> docs under a new name: same node, same baseline."""
        cache.ensure_baseline(1, DOC, _content(1))
        cache.on_rename(1, TEMP, None)
        back = DOC.with_name("report.pdf.ctbl")
        record = cache.on_rename(1, back, None)
        assert record.path == back
        assert record.has_baseline

    def test_move_over_links_clobbered_baseline(self, cache):
        """§V-B2: new file moved onto a tracked file inherits its
        baseline, so the incoming ciphertext is compared to the victim."""
        cache.ensure_baseline(10, DOC, _content(1))        # the victim
        cache.track_new(20, TEMP)                          # the ciphertext
        record = cache.on_rename(20, DOC, clobbered_node_id=10)
        assert record.node_id == 20
        assert record.has_baseline and not record.born_empty
        assert record.base_size == len(_content(1))
        assert 10 not in cache                              # old row gone

    def test_move_over_untracked_dest_no_link(self, cache):
        cache.track_new(20, TEMP)
        record = cache.on_rename(20, DOC, clobbered_node_id=99)
        assert record is not None and record.born_empty

    def test_move_over_born_empty_dest_no_link(self, cache):
        # clobbering a file the writer itself created must not launder a
        # baseline into existence
        cache.track_new(10, DOC)
        cache.track_new(20, TEMP)
        record = cache.on_rename(20, DOC, clobbered_node_id=10)
        assert record.born_empty

    def test_rename_untracked_node_returns_none(self, cache):
        assert cache.on_rename(77, DOC, None) is None

    def test_rename_none_node(self, cache):
        assert cache.on_rename(None, DOC, None) is None


class TestDeletion:
    def test_delete_evicts(self, cache):
        cache.ensure_baseline(1, DOC, _content(1))
        removed = cache.on_delete(1)
        assert removed is not None
        assert 1 not in cache

    def test_delete_unknown_none(self, cache):
        assert cache.on_delete(123) is None
        assert cache.on_delete(None) is None
