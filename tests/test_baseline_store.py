"""ISSUE 3 — shared corpus BaselineStore + high-throughput campaigns.

Covers the precomputed baseline index end to end: store construction and
dedup, first-touch baseline resolution with zero digesting, live-digest
fallback for mutated content, bit-identical detection across
store/store-less/serial/parallel execution, the lazy close-digest path,
checkpoint identity (store referenced by descriptor, never embedded),
and the worker-count / perf-aggregation plumbing around the campaign
executor.
"""

import pytest

from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.core.filestate import FileStateCache
from repro.corpus import BaselineStore, content_key, generate
from repro.ransomware import instantiate
from repro.ransomware.factory import working_cohort
from repro.sandbox import (VirtualMachine, run_campaign,
                           run_campaign_parallel, store_for_config)
from repro.sandbox.parallel import _resolve_workers
from repro.simhash.sdhash import compare as sdhash_compare


@pytest.fixture(scope="module")
def corpus():
    return generate(seed=41, n_files=12, n_dirs=3, use_cache=False)


@pytest.fixture(scope="module")
def store(corpus):
    return corpus.baseline_store()


def _some_content(corpus):
    return corpus.contents[corpus.files[0].rel_path]


def _profiles(n=6):
    by_class = {}
    for sample in working_cohort():
        by_class.setdefault(sample.profile.behavior_class,
                            []).append(sample.profile)
    picked = []
    for cls in ("A", "B", "C"):
        picked.extend(by_class[cls][:n // 3])
    return picked[:n]


def _fingerprint(campaign):
    return [(r.sample_name, r.detected, r.files_lost, round(r.score, 6),
             r.union_fired, sorted(r.flags)) for r in campaign.results]


class TestStoreBuild:
    def test_entries_deduped_by_content(self, corpus, store):
        unique = {content_key(data) for data in corpus.contents.values()}
        assert len(store) == len(unique) <= len(corpus.files)

    def test_lookup_resolves_pristine_content(self, corpus, store):
        entry = store.lookup_content(_some_content(corpus))
        assert entry is not None
        assert entry.file_type is not None
        assert entry.size == len(_some_content(corpus))
        assert entry.digested and not entry.deferred
        assert store.entropy_of(_some_content(corpus)) is not None

    def test_unknown_content_misses(self, store):
        assert store.lookup_content(b"not in any corpus") is None

    def test_fingerprint_stable_and_param_sensitive(self, corpus, store):
        again = BaselineStore.build(corpus)
        assert again.fingerprint == store.fingerprint
        ctph = BaselineStore.build(corpus, backend="ctph")
        assert ctph.fingerprint != store.fingerprint

    def test_describe_and_compatibility(self, corpus, store):
        info = store.describe()
        assert info["seed"] == corpus.seed
        assert info["entries"] == len(store)
        assert info["fingerprint"] == store.fingerprint
        assert store.compatible_with("sdhash", 4 * 1024 * 1024, True)
        assert not store.compatible_with("ctph", 4 * 1024 * 1024, True)

    def test_corpus_memoises_store_per_params(self, corpus):
        assert corpus.baseline_store() is corpus.baseline_store()
        assert corpus.baseline_store() is not \
            corpus.baseline_store(backend="ctph")

    def test_store_for_config_maps_detector_params(self, corpus):
        config = CryptoDropConfig(similarity_backend="ctph")
        assert store_for_config(corpus, config).backend == "ctph"


class TestStoreResolution:
    def test_pristine_content_never_digested(self, corpus, store):
        cache = FileStateCache(baseline_store=store)
        result = cache.inspect(_some_content(corpus))
        assert result.digested and result.digest is not None
        assert cache.digest_cache.store_hits == 1
        assert cache.digest_cache.bytes_digested == 0

    def test_mutated_content_falls_back_to_live_digest(self, corpus, store):
        cache = FileStateCache(baseline_store=store)
        mutated = _some_content(corpus) + b"!"
        result = cache.inspect(mutated)
        assert result.digested and result.digest is not None
        assert cache.digest_cache.store_misses == 1
        assert cache.digest_cache.bytes_digested == len(mutated)

    def test_store_resolution_matches_live_inspection(self, corpus, store):
        with_store = FileStateCache(baseline_store=store)
        without = FileStateCache()
        content = _some_content(corpus)
        a = with_store.inspect(content)
        b = without.inspect(content)
        assert a.file_type.name == b.file_type.name
        assert a.size == b.size
        assert sdhash_compare(a.digest, b.digest) == 100

    def test_incompatible_store_rejected(self, store):
        with pytest.raises(ValueError, match="similarity"):
            FileStateCache(backend="ctph", baseline_store=store)


class TestCampaignEquality:
    @pytest.fixture(scope="class")
    def legs(self, corpus):
        profiles = _profiles()
        eager = CryptoDropConfig(lazy_close_digests=False)
        return {
            "bench2": run_campaign([instantiate(p) for p in profiles],
                                   corpus, eager,
                                   use_baseline_store=False),
            "store": run_campaign([instantiate(p) for p in profiles],
                                  corpus),
            "parallel": run_campaign_parallel(
                [instantiate(p) for p in profiles], corpus, workers=2),
        }

    def test_detection_identical_across_modes(self, legs):
        assert _fingerprint(legs["bench2"]) == _fingerprint(legs["store"]) \
            == _fingerprint(legs["parallel"])

    def test_store_leg_used_the_store(self, legs):
        perf = legs["store"].perf_stats()
        assert perf["digest_cache"]["store_hits"] > 0
        assert perf["baseline_store"] is not None
        assert perf["bytes_digested"] < \
            legs["bench2"].perf_stats()["bytes_digested"]

    def test_campaign_perf_aggregates_samples(self, legs):
        perf = legs["store"].perf_stats()
        assert perf["samples"] == len(legs["store"].results)
        assert perf["wall_seconds"] > 0
        assert perf["samples_per_second"] > 0
        assert perf["workers"] == 1
        assert legs["parallel"].perf["workers"] == 2

    def test_mutating_samples_do_not_poison_the_store(self, corpus):
        # the store survives samples rewriting corpus files: mutated
        # versions live-digest (store miss), and after revert the next
        # sample resolves pristine baselines from the store again
        profiles = _profiles()
        first = run_campaign([instantiate(p) for p in profiles], corpus)
        second = run_campaign([instantiate(p) for p in profiles], corpus)
        assert _fingerprint(first) == _fingerprint(second)
        assert second.perf_stats()["digest_cache"]["store_hits"] > 0


class TestLazyCloseDigests:
    def test_lazy_and_eager_score_identically(self, corpus):
        profiles = _profiles()
        lazy = run_campaign([instantiate(p) for p in profiles], corpus,
                            CryptoDropConfig(lazy_close_digests=True),
                            use_baseline_store=False)
        eager = run_campaign([instantiate(p) for p in profiles], corpus,
                             CryptoDropConfig(lazy_close_digests=False),
                             use_baseline_store=False)
        assert _fingerprint(lazy) == _fingerprint(eager)
        assert lazy.perf_stats()["deferred_digests"] > 0
        assert lazy.perf_stats()["bytes_digested"] <= \
            eager.perf_stats()["bytes_digested"]


class TestCheckpointIdentity:
    def _monitor(self, corpus, store):
        machine = VirtualMachine(corpus, baseline_store=store)
        monitor = CryptoDropMonitor(machine.vfs,
                                    baseline_store=store).attach()
        pid = machine.vfs.processes.spawn("editor.exe").pid
        row = corpus.files[0]
        path = machine.docs_root.joinpath(*(row.rel_dir + (row.name,)))
        handle = machine.vfs.open(pid, path, "rw")
        data = machine.vfs.read(pid, handle)
        machine.vfs.seek(pid, handle, 0)
        machine.vfs.write(pid, handle, data)
        machine.vfs.close(pid, handle)
        return machine, monitor

    def test_checkpoint_references_store_by_descriptor(self, corpus, store):
        _machine, monitor = self._monitor(corpus, store)
        state = monitor.engine.checkpoint()
        descriptor = state["cache"]["baseline_store"]
        assert descriptor["fingerprint"] == store.fingerprint
        assert descriptor["seed"] == corpus.seed
        # entries are never embedded, only the identity travels
        assert set(descriptor) == {"seed", "backend", "max_inspect_bytes",
                                   "digests_enabled", "entries", "storage",
                                   "fingerprint"}
        monitor.detach()

    def test_checkpoint_materialises_pending_digests(self, corpus, store):
        _machine, monitor = self._monitor(corpus, store)
        cache = monitor.engine.cache
        state = cache.checkpoint()
        assert all(r.pending_content is None
                   for r in cache._by_node.values())
        fresh = FileStateCache(baseline_store=store)
        fresh.restore(state)
        assert fresh.checkpoint()["entries"] == state["entries"]
        monitor.detach()

    def test_restore_rejects_fingerprint_mismatch(self, corpus, store):
        _machine, monitor = self._monitor(corpus, store)
        state = monitor.engine.cache.checkpoint()
        monitor.detach()
        other = BaselineStore.build(corpus, backend="ctph")
        mismatched = FileStateCache(backend="ctph", baseline_store=other)
        with pytest.raises(ValueError, match="fingerprint|store"):
            mismatched.restore(state)


class TestWorkerResolution:
    def test_explicit_argument_wins(self):
        config = CryptoDropConfig(campaign_workers=4)
        assert _resolve_workers(3, config) == 3

    def test_config_knob_used_when_unspecified(self):
        assert _resolve_workers(None, CryptoDropConfig(campaign_workers=5)) \
            == 5

    def test_zero_config_means_cpu_count(self):
        import os
        assert _resolve_workers(None, CryptoDropConfig()) == \
            (os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert _resolve_workers(0, None) == 1
