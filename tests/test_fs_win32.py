"""Win32 file-API shim semantics."""

import pytest

from repro.fs import (DOCUMENTS, FileExists, FileNotFound,
                      ProcessSuspended, VirtualFileSystem)
from repro.fs.win32 import (CREATE_ALWAYS, CREATE_NEW, FILE_BEGIN,
                            FILE_CURRENT, FILE_END, GENERIC_READ,
                            GENERIC_WRITE, MOVEFILE_REPLACE_EXISTING,
                            OPEN_ALWAYS, OPEN_EXISTING, TRUNCATE_EXISTING,
                            Win32Api)


@pytest.fixture
def api(vfs, pid):
    return Win32Api(vfs, pid)


class TestCreationDispositions:
    def test_create_new(self, api):
        handle = api.CreateFile(DOCUMENTS / "a.txt", GENERIC_WRITE,
                                CREATE_NEW)
        api.WriteFile(handle, b"hello")
        api.CloseHandle(handle)
        assert api.GetFileSize(DOCUMENTS / "a.txt") == 5

    def test_create_new_fails_on_existing(self, api):
        api.CloseHandle(api.CreateFile(DOCUMENTS / "a.txt", GENERIC_WRITE,
                                       CREATE_NEW))
        with pytest.raises(FileExists):
            api.CreateFile(DOCUMENTS / "a.txt", GENERIC_WRITE, CREATE_NEW)

    def test_create_always_truncates(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"old content")
        handle = api.CreateFile(DOCUMENTS / "a.txt", GENERIC_WRITE,
                                CREATE_ALWAYS)
        api.CloseHandle(handle)
        assert api.GetFileSize(DOCUMENTS / "a.txt") == 0

    def test_open_existing_requires_existence(self, api):
        with pytest.raises(FileNotFound):
            api.CreateFile(DOCUMENTS / "ghost.txt", GENERIC_READ,
                           OPEN_EXISTING)

    def test_open_always_creates_or_opens(self, api):
        h1 = api.CreateFile(DOCUMENTS / "b.txt", GENERIC_WRITE, OPEN_ALWAYS)
        api.WriteFile(h1, b"x")
        api.CloseHandle(h1)
        h2 = api.CreateFile(DOCUMENTS / "b.txt",
                            GENERIC_READ | GENERIC_WRITE, OPEN_ALWAYS)
        assert api.ReadFile(h2) == b"x"       # content survived
        api.CloseHandle(h2)

    def test_truncate_existing(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "c.txt", b"data")
        handle = api.CreateFile(DOCUMENTS / "c.txt", GENERIC_WRITE,
                                TRUNCATE_EXISTING)
        api.CloseHandle(handle)
        assert api.GetFileSize(DOCUMENTS / "c.txt") == 0

    def test_truncate_existing_requires_write(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "c.txt", b"data")
        with pytest.raises(ValueError):
            api.CreateFile(DOCUMENTS / "c.txt", GENERIC_READ,
                           TRUNCATE_EXISTING)

    def test_no_access_rejected(self, api):
        with pytest.raises(ValueError):
            api.CreateFile(DOCUMENTS / "x", 0, OPEN_ALWAYS)

    def test_unknown_disposition_rejected(self, api):
        with pytest.raises(ValueError):
            api.CreateFile(DOCUMENTS / "x", GENERIC_WRITE, 99)


class TestPointerOps:
    def test_file_pointer_origins(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "d.bin", bytes(range(100)))
        handle = api.CreateFile(DOCUMENTS / "d.bin",
                                GENERIC_READ | GENERIC_WRITE, OPEN_EXISTING)
        assert api.SetFilePointer(handle, 10, FILE_BEGIN) == 10
        assert api.ReadFile(handle, 1) == bytes([10])
        assert api.SetFilePointer(handle, 4, FILE_CURRENT) == 15
        assert api.SetFilePointer(handle, -1, FILE_END) == 99
        assert api.ReadFile(handle, 1) == bytes([99])
        api.CloseHandle(handle)

    def test_set_end_of_file(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "d.bin", bytes(100))
        handle = api.CreateFile(DOCUMENTS / "d.bin",
                                GENERIC_READ | GENERIC_WRITE, OPEN_EXISTING)
        api.SetFilePointer(handle, 10, FILE_BEGIN)
        api.SetEndOfFile(handle)
        api.CloseHandle(handle)
        assert api.GetFileSize(DOCUMENTS / "d.bin") == 10

    def test_negative_pointer_rejected(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "d.bin", b"xy")
        handle = api.CreateFile(DOCUMENTS / "d.bin", GENERIC_READ,
                                OPEN_EXISTING)
        with pytest.raises(ValueError):
            api.SetFilePointer(handle, -5, FILE_BEGIN)
        api.CloseHandle(handle)


class TestNamespaceOps:
    def test_move_file_ex(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "src", b"1")
        vfs.write_file(pid, DOCUMENTS / "dst", b"2")
        with pytest.raises(FileExists):
            api.MoveFileEx(DOCUMENTS / "src", DOCUMENTS / "dst")
        api.MoveFileEx(DOCUMENTS / "src", DOCUMENTS / "dst",
                       MOVEFILE_REPLACE_EXISTING)
        assert vfs.peek_read(DOCUMENTS / "dst") == b"1"

    def test_delete_and_exists(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "victim", b"1")
        assert api.PathFileExists(DOCUMENTS / "victim")
        api.DeleteFile(DOCUMENTS / "victim")
        assert not api.PathFileExists(DOCUMENTS / "victim")

    def test_find_files(self, api, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "one.txt", b"")
        api.CreateDirectory(DOCUMENTS / "Sub")
        names = api.FindFiles(DOCUMENTS)
        assert "one.txt" in names and "Sub" in names


class TestShimIsMonitored:
    def test_win32_attack_is_detected(self, vfs, pid):
        """An attack written purely against the Win32 surface flows
        through the same filter stack and is convicted identically."""
        import random
        from repro.core import CryptoDropMonitor
        from repro.corpus.wordlists import paragraphs
        from repro.crypto import chacha20_xor
        for i in range(16):
            vfs.peek_write(DOCUMENTS / f"doc{i}.txt",
                           paragraphs(random.Random(i), 9000).encode())
        monitor = CryptoDropMonitor(vfs).attach()
        api = Win32Api(vfs, pid)
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                path = DOCUMENTS / f"doc{i}.txt"
                handle = api.CreateFile(path,
                                        GENERIC_READ | GENERIC_WRITE,
                                        OPEN_EXISTING)
                data = api.ReadFile(handle)
                api.SetFilePointer(handle, 0, FILE_BEGIN)
                api.WriteFile(handle,
                              chacha20_xor(bytes(32), bytes(12), data))
                api.CloseHandle(handle)
        assert monitor.detected
