"""ISSUE 9 — persistent baseline store (``repro.store``).

Backend parity is the contract under test: a store saved to disk and
reopened through the mmap backend must be indistinguishable — entry for
entry, verdict for verdict, fingerprint for fingerprint — from the dict
store it came from, on ragged corpora (empty files, oversize blobs,
duplicate content) as well as the standard one.  Plus the format's
failure modes: truncated and corrupt files are rejected with actionable
errors, never misread, and the fsck pass catches what lookups would
trust.
"""

import os
import struct

import pytest

from repro.core import CryptoDropConfig
from repro.core.filestate import FileStateCache
from repro.corpus import BaselineStore, content_key, generate
from repro.ransomware import instantiate
from repro.ransomware.factory import working_cohort
from repro.sandbox import VirtualMachine, run_campaign, store_for_config
from repro.sandbox.parallel import build_store_parallel
from repro.store import (MmapBackend, StoreFormatError, fsck_store,
                         merge_store_files)
from repro.store.format import HEADER_SIZE
from repro.telemetry import TelemetrySession


@pytest.fixture(scope="module")
def corpus():
    return generate(seed=83, n_files=60, n_dirs=6, use_cache=False)


@pytest.fixture(scope="module")
def dict_store(corpus):
    return BaselineStore.build(corpus)


@pytest.fixture(scope="module")
def store_path(corpus, dict_store, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "corpus.cdbs"
    dict_store.save(path)
    return str(path)


@pytest.fixture()
def mmap_store(store_path):
    store = BaselineStore.open(store_path)
    yield store
    store.close()


def _entries_equal(a, b) -> bool:
    """Structural equality (SdDigest has no __eq__ of its own)."""
    if (a.digest is None) != (b.digest is None):
        return False
    if a.digest is not None and a.digest.to_state() != b.digest.to_state():
        return False
    return (a.file_type == b.file_type and str(a.ctph) == str(b.ctph)
            and a.size == b.size and a.entropy == b.entropy
            and a.digested == b.digested)


def _campaign_fingerprint(campaign):
    return [(r.sample_name, r.detected, r.files_lost, round(r.score, 6),
             r.union_fired, sorted(r.flags)) for r in campaign.results]


class TestRoundTrip:
    def test_every_entry_identical(self, dict_store, mmap_store):
        assert len(mmap_store) == len(dict_store)
        for key, entry in dict_store._entries.items():
            assert _entries_equal(entry, mmap_store.get(key)), key.hex()

    def test_identity_travels(self, dict_store, mmap_store, corpus):
        assert mmap_store.fingerprint == dict_store.fingerprint
        assert mmap_store.seed == corpus.seed
        assert mmap_store.total_bytes == dict_store.total_bytes
        assert mmap_store.describe()["storage"] == "mmap"
        assert dict_store.describe()["storage"] == "dict"

    def test_open_reads_nothing_but_the_header(self, mmap_store):
        stats = mmap_store.page_stats()
        assert stats["page_ins"] == 0
        assert stats["resident"] == 0

    def test_miss_returns_none(self, mmap_store):
        assert mmap_store.get(b"\x00" * 16) is None
        assert mmap_store.lookup_content(b"never in any corpus") is None
        assert b"\xff" * 16 not in mmap_store

    def test_fsck_clean(self, store_path, dict_store):
        report = fsck_store(store_path)
        assert report["ok"], report["problems"]
        assert report["records_checked"] == len(dict_store)


class TestRaggedCorpora:
    """Empty, oversize and duplicate blobs round-trip like any other."""

    @pytest.fixture(scope="class")
    def ragged_pair(self, corpus, tmp_path_factory):
        contents = dict(corpus.contents)
        contents["empty.txt"] = b""
        contents["huge.bin"] = os.urandom(64) * 1024      # 64 KiB
        contents["dup_a.txt"] = b"identical bytes either way"
        contents["dup_b.txt"] = b"identical bytes either way"

        class Ragged:
            seed = corpus.seed
        ragged = Ragged()
        ragged.contents = contents
        dict_store = BaselineStore.build(ragged, max_inspect_bytes=32 * 1024)
        path = tmp_path_factory.mktemp("ragged") / "ragged.cdbs"
        dict_store.save(path)
        disk = BaselineStore.open(path)
        return contents, dict_store, disk

    def test_parity_including_edge_entries(self, ragged_pair):
        _, dict_store, disk = ragged_pair
        assert len(disk) == len(dict_store)
        for key, entry in dict_store._entries.items():
            assert _entries_equal(entry, disk.get(key))

    def test_empty_file_entry(self, ragged_pair):
        _, _, disk = ragged_pair
        entry = disk.lookup_content(b"")
        assert entry is not None and entry.size == 0

    def test_oversize_entry_undigested(self, ragged_pair):
        contents, dict_store, disk = ragged_pair
        entry = disk.lookup_content(contents["huge.bin"])
        assert entry is not None and entry.size == 64 * 1024
        assert not entry.digested and entry.digest is None
        paired = dict_store.lookup_content(contents["huge.bin"])
        assert _entries_equal(entry, paired)

    def test_duplicate_content_dedups(self, ragged_pair):
        _, dict_store, disk = ragged_pair
        key = content_key(b"identical bytes either way")
        assert disk.get(key) is not None
        # two paths, one entry
        assert len(disk) == len(dict_store._entries)


class TestHotEntryLru:
    def test_lru_bounds_residency(self, store_path, dict_store):
        store = BaselineStore.open(store_path, hot_entries=8)
        for key in list(dict_store._entries)[:32]:
            store.get(key)
        stats = store.page_stats()
        assert stats["page_ins"] == 32
        assert stats["resident"] == 8 <= stats["hot_capacity"]
        store.close()

    def test_repeat_lookups_hit_hot_cache(self, store_path, dict_store):
        store = BaselineStore.open(store_path)
        key = next(iter(dict_store._entries))
        first = store.get(key)
        assert store.get(key) is first
        stats = store.page_stats()
        assert stats["page_ins"] == 1 and stats["hot_hits"] == 1
        store.close()

    def test_page_ins_surface_on_telemetry(self, store_path, dict_store):
        store = BaselineStore.open(store_path)
        session = TelemetrySession()
        store.bind_telemetry(session)
        store.get(next(iter(dict_store._entries)))
        assert session.store_page_ins.total() == 1
        assert len(session.bus.events("store_page_in")) == 1
        store.close()


class TestResolutionChain:
    def test_inspect_resolves_from_disk_without_digesting(
            self, corpus, mmap_store):
        cache = FileStateCache(baseline_store=mmap_store)
        content = corpus.contents[corpus.files[0].rel_path]
        result = cache.inspect(content)
        assert result.digested and result.digest is not None
        assert cache.digest_cache.store_hits == 1
        assert cache.digest_cache.bytes_digested == 0

    def test_incompatible_disk_store_rejected(self, mmap_store):
        with pytest.raises(ValueError, match="similarity"):
            FileStateCache(backend="ctph", baseline_store=mmap_store)

    def test_seed_mismatch_fails_fast(self, mmap_store):
        other = generate(seed=84, n_files=8, n_dirs=2, use_cache=False)
        with pytest.raises(ValueError, match="seed"):
            VirtualMachine(other, baseline_store=mmap_store)
        assert not mmap_store.compatible_with(
            "sdhash", 4 * 1024 * 1024, True, seed=other.seed)
        assert mmap_store.compatible_with(
            "sdhash", 4 * 1024 * 1024, True, seed=mmap_store.seed)


class TestCampaignIdentity:
    @pytest.fixture(scope="class")
    def cohort(self):
        profiles = []
        by_class = {}
        for sample in working_cohort():
            by_class.setdefault(sample.profile.behavior_class,
                                []).append(sample.profile)
        for cls in ("A", "B", "C"):
            profiles.extend(by_class[cls][:2])
        return profiles

    def test_verdicts_identical_across_backends(self, corpus, cohort):
        dict_leg = run_campaign([instantiate(p) for p in cohort], corpus,
                                CryptoDropConfig(store_backend="dict"))
        mmap_leg = run_campaign([instantiate(p) for p in cohort], corpus,
                                CryptoDropConfig(store_backend="mmap"))
        assert _campaign_fingerprint(dict_leg) == \
            _campaign_fingerprint(mmap_leg)
        assert dict_leg.perf["baseline_store"]["storage"] == "dict"
        assert mmap_leg.perf["baseline_store"]["storage"] == "mmap"
        assert mmap_leg.perf["baseline_store"]["fingerprint"] == \
            dict_leg.perf["baseline_store"]["fingerprint"]
        assert mmap_leg.perf_stats()["digest_cache"]["store_hits"] > 0

    def test_store_for_config_threads_the_knobs(self, corpus):
        config = CryptoDropConfig(store_backend="mmap", store_hot_entries=64)
        store = store_for_config(corpus, config)
        assert store.storage == "mmap"
        assert store.page_stats()["hot_capacity"] == 64
        # memoised per knob set
        assert store_for_config(corpus, config) is store

    def test_unknown_storage_rejected(self, corpus):
        with pytest.raises(ValueError, match="storage"):
            corpus.baseline_store(storage="carrier-pigeon")


class TestCheckpointRestore:
    def test_restore_against_reopened_store_file(self, corpus, store_path,
                                                 dict_store):
        machine = VirtualMachine(corpus, baseline_store=dict_store)
        from repro.core import CryptoDropMonitor
        monitor = CryptoDropMonitor(machine.vfs,
                                    baseline_store=dict_store).attach()
        pid = machine.vfs.processes.spawn("editor.exe").pid
        row = corpus.files[0]
        path = machine.docs_root.joinpath(*(row.rel_dir + (row.name,)))
        handle = machine.vfs.open(pid, path, "rw")
        machine.vfs.write(pid, handle,
                          machine.vfs.read(pid, handle))
        machine.vfs.close(pid, handle)
        state = monitor.engine.cache.checkpoint()
        monitor.detach()
        assert state["baseline_store"]["storage"] == "dict"

        reopened = BaselineStore.open(store_path)
        fresh = FileStateCache(baseline_store=reopened)
        fresh.restore(state)  # same fingerprint, different storage: fine
        assert fresh.checkpoint()["baseline_store"]["fingerprint"] == \
            state["baseline_store"]["fingerprint"]
        reopened.close()

    def test_restore_rejects_wrong_corpus_store(self, corpus, store_path,
                                                tmp_path):
        other = generate(seed=85, n_files=8, n_dirs=2, use_cache=False)
        other_store = BaselineStore.build(other)
        other_path = tmp_path / "other.cdbs"
        other_store.save(other_path)
        cache = FileStateCache(baseline_store=BaselineStore.open(store_path))
        state = cache.checkpoint()
        mismatched = FileStateCache(
            baseline_store=BaselineStore.open(other_path))
        with pytest.raises(ValueError, match="fingerprint|store"):
            mismatched.restore(state)


class TestCorruptionRejection:
    def test_not_a_store(self, tmp_path):
        path = tmp_path / "noise.cdbs"
        path.write_bytes(b"PK\x03\x04 this is a zip, not a store" * 10)
        with pytest.raises(StoreFormatError, match="magic"):
            BaselineStore.open(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.cdbs"
        path.write_bytes(b"")
        with pytest.raises(StoreFormatError, match="empty|short"):
            BaselineStore.open(path)

    def test_truncated_header(self, tmp_path, store_path):
        path = tmp_path / "trunc_header.cdbs"
        path.write_bytes(open(store_path, "rb").read(HEADER_SIZE // 2))
        with pytest.raises(StoreFormatError, match="short|truncated"):
            BaselineStore.open(path)

    def test_truncated_body(self, tmp_path, store_path):
        blob = open(store_path, "rb").read()
        path = tmp_path / "trunc_body.cdbs"
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(StoreFormatError, match="truncated"):
            BaselineStore.open(path)

    def test_header_bitrot(self, tmp_path, store_path):
        blob = bytearray(open(store_path, "rb").read())
        blob[10] ^= 0xFF
        path = tmp_path / "bitrot.cdbs"
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreFormatError, match="CRC|corrupt"):
            BaselineStore.open(path)

    def test_record_bitrot_caught_by_fsck(self, tmp_path, store_path):
        blob = bytearray(open(store_path, "rb").read())
        # flip one payload byte mid-record-log; lookups don't checksum
        # (hot path), fsck must
        blob[HEADER_SIZE + 200] ^= 0xFF
        path = tmp_path / "record_rot.cdbs"
        path.write_bytes(bytes(blob))
        report = fsck_store(path)
        assert not report["ok"]
        assert any("CRC" in p or "corrupt" in p for p in report["problems"])

    def test_unsupported_version(self, tmp_path, store_path):
        import zlib as _zlib
        blob = bytearray(open(store_path, "rb").read())
        struct.pack_into("<H", blob, 4, 99)           # version field
        crc = _zlib.crc32(bytes(blob[:HEADER_SIZE - 4]) + b"\x00" * 4)
        struct.pack_into("<I", blob, HEADER_SIZE - 4, crc)
        path = tmp_path / "future.cdbs"
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreFormatError, match="version"):
            BaselineStore.open(path)


class TestShardedBuild:
    def test_sharded_disk_build_matches_in_memory(self, corpus, dict_store,
                                                  tmp_path):
        path = tmp_path / "sharded.cdbs"
        store = build_store_parallel(corpus, workers=3, path=str(path))
        assert store.storage == "mmap"
        assert store.fingerprint == dict_store.fingerprint
        assert len(store) == len(dict_store)
        assert store.total_bytes == dict_store.total_bytes
        for key, entry in dict_store._entries.items():
            assert _entries_equal(entry, store.get(key))
        assert fsck_store(path)["ok"]
        assert not list(tmp_path.glob("*.shard*")), "shards must be cleaned"
        store.close()

    def test_degenerate_single_worker_disk_build(self, corpus, dict_store,
                                                 tmp_path):
        path = tmp_path / "serial.cdbs"
        store = build_store_parallel(corpus, workers=1, path=str(path))
        assert store.storage == "mmap"
        assert store.fingerprint == dict_store.fingerprint
        store.close()

    def test_merge_refuses_mixed_parameters(self, corpus, tmp_path):
        a = BaselineStore.build(corpus)
        b = BaselineStore.build(corpus, max_inspect_bytes=1024)
        pa, pb = tmp_path / "a.cdbs", tmp_path / "b.cdbs"
        a.save(pa)
        b.save(pb)
        with pytest.raises(StoreFormatError, match="parameters"):
            merge_store_files([str(pa), str(pb)], tmp_path / "out.cdbs")

    def test_merge_refuses_overlapping_keys(self, corpus, tmp_path):
        store = BaselineStore.build(corpus)
        pa, pb = tmp_path / "a.cdbs", tmp_path / "b.cdbs"
        store.save(pa)
        store.save(pb)
        with pytest.raises(StoreFormatError, match="share|partition"):
            merge_store_files([str(pa), str(pb)], tmp_path / "out.cdbs")


class TestCtphBackend:
    def test_ctph_round_trip(self, corpus, tmp_path):
        dict_store = BaselineStore.build(corpus, backend="ctph",
                                         batched=False)
        path = tmp_path / "ctph.cdbs"
        dict_store.save(path)
        disk = BaselineStore.open(path)
        assert disk.backend == "ctph"
        assert disk.fingerprint == dict_store.fingerprint
        for key, entry in dict_store._entries.items():
            assert _entries_equal(entry, disk.get(key))
        assert fsck_store(path)["ok"]
        disk.close()
