"""Public API surface: the package-level contract downstream users see."""

import importlib
import inspect

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.fs", "repro.magic", "repro.simhash", "repro.crypto",
        "repro.corpus", "repro.core", "repro.ransomware", "repro.benign",
        "repro.baselines", "repro.sandbox", "repro.experiments",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize("module", [
        "repro.fs", "repro.magic", "repro.simhash", "repro.crypto",
        "repro.corpus", "repro.core", "repro.ransomware", "repro.benign",
        "repro.baselines", "repro.sandbox", "repro.experiments",
        "repro.entropy", "repro.recovery",
    ])
    def test_every_public_item_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and mod.__doc__.strip()
        undocumented = []
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module}.{name}")
        assert not undocumented

    def test_readme_quickstart_runs(self):
        from repro.corpus import generate
        from repro.ransomware import working_cohort
        from repro.sandbox import VirtualMachine, run_sample

        machine = VirtualMachine(generate(seed=7, n_files=600, n_dirs=60))
        machine.snapshot()
        sample = next(s for s in working_cohort()
                      if s.profile.family == "teslacrypt")
        result = run_sample(machine, sample)
        assert result.detected and result.union_fired
        assert result.files_lost == 9   # the number printed in README.md


class TestCli:
    def test_cli_tiny_table1(self, capsys):
        from repro.__main__ import main
        assert main(["ctb-rerun", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "CTB-Locker" in out and "completed in" in out

    def test_cli_rejects_unknown_experiment(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])
