"""Property-based tests on the load-bearing invariants.

The most valuable one is the filesystem model check: arbitrary operation
sequences against the VFS must agree with a trivial dict-based oracle,
and a snapshot/revert around any sequence must restore the oracle state
— the campaign harness leans on that for 492 revert cycles.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ProcessEntropyState
from repro.entropy import shannon_entropy
from repro.fs import DOCUMENTS, FsError, VirtualFileSystem
from repro.simhash import compare_bytes

_NAMES = ("alpha.txt", "Beta.bin", "gamma.dat", "DELTA.tmp", "note.md")
_PAYLOADS = (b"", b"x", b"hello world", bytes(range(200)), b"Z" * 5000)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(_NAMES),
                  st.sampled_from(_PAYLOADS)),
        st.tuples(st.just("append"), st.sampled_from(_NAMES),
                  st.sampled_from(_PAYLOADS)),
        st.tuples(st.just("delete"), st.sampled_from(_NAMES), st.none()),
        st.tuples(st.just("rename"), st.sampled_from(_NAMES),
                  st.sampled_from(_NAMES)),
        st.tuples(st.just("truncate"), st.sampled_from(_NAMES), st.none()),
    ),
    min_size=1, max_size=30)


def _apply(vfs, pid, oracle, op):
    """Apply one op to both the VFS and the dict oracle."""
    kind, name, arg = op
    path = DOCUMENTS / name
    try:
        if kind == "write":
            vfs.write_file(pid, path, arg)
            oracle[name.lower()] = arg
        elif kind == "append":
            handle = vfs.open(pid, path, "a", create=True)
            try:
                vfs.write(pid, handle, arg)
            finally:
                vfs.close(pid, handle)
            oracle[name.lower()] = oracle.get(name.lower(), b"") + arg
        elif kind == "delete":
            vfs.delete(pid, path)
            del oracle[name.lower()]
        elif kind == "rename":
            if name.lower() == arg.lower():
                return
            vfs.rename(pid, path, DOCUMENTS / arg)
            oracle[arg.lower()] = oracle.pop(name.lower())
        elif kind == "truncate":
            handle = vfs.open(pid, path, "rw")
            try:
                vfs.truncate_handle(pid, handle, 1)
            finally:
                vfs.close(pid, handle)
            oracle[name.lower()] = oracle[name.lower()][:1]
    except FsError:
        # oracle performs the same existence checks implicitly via KeyError
        pass
    except KeyError:
        pass


def _vfs_state(vfs):
    return {path.name.lower(): bytes(node.data)
            for path, node in vfs.peek_walk_files(DOCUMENTS)}


class TestVfsModelCheck:
    @settings(max_examples=60, deadline=None)
    @given(_ops)
    def test_vfs_agrees_with_oracle(self, ops):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        pid = vfs.processes.spawn("model.exe").pid
        oracle: dict = {}
        for op in ops:
            kind, name, arg = op
            # keep oracle/KeyError semantics aligned with FS errors
            if kind in ("delete", "truncate", "rename") \
                    and name.lower() not in oracle:
                try:
                    _apply(vfs, pid, oracle, op)
                except Exception:
                    pass
                continue
            _apply(vfs, pid, oracle, op)
        assert _vfs_state(vfs) == oracle

    @settings(max_examples=60, deadline=None)
    @given(_ops, _ops)
    def test_revert_restores_exact_state(self, setup_ops, attack_ops):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        pid = vfs.processes.spawn("model.exe").pid
        oracle: dict = {}
        for op in setup_ops:
            _apply(vfs, pid, oracle, op)
        before = _vfs_state(vfs)
        vfs.snapshot_mark()
        scratch: dict = dict(oracle)
        for op in attack_ops:
            _apply(vfs, pid, scratch, op)
        vfs.revert()
        assert _vfs_state(vfs) == before


class TestDetectorInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=3000), min_size=1,
                    max_size=8),
           st.lists(st.binary(min_size=1, max_size=3000), min_size=1,
                    max_size=8))
    def test_entropy_delta_bounded(self, reads, writes):
        state = ProcessEntropyState()
        for chunk in reads:
            state.on_read(chunk)
        for chunk in writes:
            state.on_write(chunk)
        delta = state.delta()
        if delta is not None:
            assert 0.0 <= delta <= 8.0

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.data_too_large])
    @given(st.integers(0, 100000))
    def test_encryption_always_looks_like_data(self, seed):
        """Any ciphertext: unidentifiable type + near-random digest."""
        from repro.magic import identify
        rng = random.Random(seed)
        cipher = rng.randbytes(rng.randint(2048, 8192))
        assert identify(cipher).name == "data"
        assert shannon_entropy(cipher) > 7.5

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1024, max_size=6000),
           st.integers(0, 3000))
    def test_similarity_reflexive_under_prefix(self, data, cut):
        """A file and a strict extension of it stay related."""
        extended = data + data[:cut]
        score = compare_bytes(data, extended)
        if score is not None:
            assert score >= 40
