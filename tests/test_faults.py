"""Fault-injection subsystem: plans, the injector driver, error contracts.

The FsError-tolerance contract is the load-bearing one: transient
environmental failures (``OperationDenied`` — locked files, sharing
violations — plus short reads) must be *skipped* by ransomware samples,
while ``ProcessSuspended`` (CryptoDrop's verdict) must unwind the whole
program.  Chaos/campaign-level scenarios live in ``test_chaos.py``.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.faults import (FaultInjector, FaultPlan, MonitorSupervisor,
                          monitor_crash, transient_faults)
from repro.fs.events import OpKind
from repro.ransomware import working_cohort
from repro.sandbox import run_sample

pytestmark = pytest.mark.chaos


@contextlib.contextmanager
def injected(machine, plan, on_kill=None):
    injector = FaultInjector(plan, on_monitor_kill=on_kill)
    machine.vfs.filters.attach(injector)
    try:
        yield injector
    finally:
        machine.vfs.filters.detach(injector)


def family_sample(family, behavior_class=None):
    for sample in working_cohort():
        if sample.profile.family != family:
            continue
        if (behavior_class is None
                or sample.profile.behavior_class == behavior_class):
            return sample
    raise LookupError(f"no working {family}/{behavior_class} sample")


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(deny_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(short_read_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(short_read_factor=0.0)
        with pytest.raises(ValueError):
            FaultPlan(kill_monitor_at_ops=(0,))

    def test_armed_semantics(self):
        assert not FaultPlan().armed
        assert FaultPlan(deny_rate=0.1).armed
        assert FaultPlan(kill_monitor_at_ops=(5,)).armed
        assert transient_faults(seed=1).armed
        assert monitor_crash(10, 20).kill_monitor_at_ops == (10, 20)

    def test_with_overrides_is_pure(self):
        base = transient_faults(seed=3)
        tweaked = base.with_overrides(deny_rate=0.5)
        assert tweaked.deny_rate == 0.5
        assert base.deny_rate != 0.5


class TestInjectorNeutrality:
    """No plan armed => attaching the injector changes nothing."""

    def test_unarmed_injector_is_invisible(self, machine):
        sample = family_sample("xorist")
        bare = run_sample(machine, sample)
        with injected(machine, None) as injector:
            shadowed = run_sample(machine, family_sample("xorist"))
        assert injector.stats() == {"ops_seen": 0, "denials": 0,
                                    "short_reads": 0, "latency_spikes": 0,
                                    "monitor_kills": 0}
        assert (bare.score, bare.files_lost, sorted(bare.flags),
                bare.sim_seconds) == \
            (shadowed.score, shadowed.files_lost, sorted(shadowed.flags),
             shadowed.sim_seconds)

    def test_all_zero_plan_never_arms(self, machine):
        with injected(machine, FaultPlan(seed=9)) as injector:
            run_sample(machine, family_sample("xorist"))
        assert not injector.armed
        assert injector.stats()["ops_seen"] == 0


class TestInjectorDeterminism:
    def test_same_plan_same_stream_same_faults(self, machine):
        plan = transient_faults(seed=42, deny_rate=0.05,
                                short_read_rate=0.05)
        runs = []
        for _ in range(2):
            with injected(machine, plan) as injector:
                result = run_sample(machine, family_sample("teslacrypt"))
                runs.append((result.detected, result.score,
                             result.files_lost, sorted(result.flags),
                             injector.stats()))
        assert runs[0] == runs[1]
        assert runs[0][4]["denials"] > 0 or runs[0][4]["short_reads"] > 0

    def test_different_seed_different_faults(self, machine):
        stats = []
        for seed in (1, 2):
            plan = transient_faults(seed=seed, deny_rate=0.08,
                                    short_read_rate=0.08)
            with injected(machine, plan) as injector:
                run_sample(machine, family_sample("teslacrypt"))
                stats.append(injector.stats())
        assert stats[0] != stats[1]


class TestInjectorFaults:
    def test_max_denials_caps_injection(self, machine):
        plan = FaultPlan(seed=7, deny_rate=1.0, max_denials=3,
                         deny_kinds=(OpKind.OPEN,))
        with injected(machine, plan) as injector:
            run_sample(machine, family_sample("xorist"))
        assert injector.denials == 3

    def test_short_reads_truncate_but_do_not_crash(self, machine):
        plan = FaultPlan(seed=7, short_read_rate=1.0, short_read_factor=0.25)
        with injected(machine, plan) as injector:
            result = run_sample(machine, family_sample("xorist"))
        assert injector.short_reads > 0
        assert result.error is None

    def test_latency_spikes_charge_the_simulated_clock(self, machine):
        quiet = run_sample(machine, family_sample("xorist"))
        plan = FaultPlan(seed=7, latency_spike_rate=1.0,
                         latency_spike_us=250_000.0)
        with injected(machine, plan) as injector:
            spiky = run_sample(machine, family_sample("xorist"))
        assert injector.latency_spikes > 0
        assert spiky.sim_seconds > quiet.sim_seconds


class TestFsErrorToleranceContract:
    """Denials are per-file skips; ProcessSuspended unwinds the program."""

    FAMILIES = [("teslacrypt", "A"), ("xorist", "A"),
                ("ctb-locker", "B"), ("cryptowall", "A")]

    def test_families_cover_both_classes(self):
        classes = {behavior for _family, behavior in self.FAMILIES}
        assert {"A", "B"} <= classes

    @pytest.mark.parametrize("family,behavior", FAMILIES)
    def test_denials_are_skipped_not_fatal(self, machine, family, behavior):
        sample = family_sample(family, behavior)
        plan = FaultPlan(seed=11, deny_rate=0.15)
        with injected(machine, plan) as injector:
            result = run_sample(machine, sample)
        assert injector.denials > 0
        # The run must never abort on an environmental error: either it
        # ran to completion around the locked files, or CryptoDrop
        # suspended it — the only legitimate early exit.
        assert result.error is None
        assert result.completed or result.suspended

    @pytest.mark.parametrize("family,behavior", FAMILIES)
    def test_suspension_unwinds_whole_program(self, machine, family,
                                              behavior):
        result = run_sample(machine, family_sample(family, behavior))
        assert result.detected and result.suspended
        # suspension fired mid-attack: the sample never finished its
        # traversal, so the corpus retains undamaged files
        assert not result.completed
        assert result.files_lost < 420

    def test_detection_survives_heavy_denial(self, machine):
        """Even with half of all opens/writes refused, the detector still
        converges — denials starve it of evidence (denied ops never
        complete, so nothing is scored), which may *delay* the verdict and
        cost extra files, but must never produce a crash or a miss."""
        plan = FaultPlan(seed=3, deny_rate=0.5,
                         deny_kinds=(OpKind.OPEN, OpKind.WRITE))
        with injected(machine, plan) as injector:
            denied = run_sample(machine, family_sample("xorist"))
        assert injector.denials > 0
        assert denied.error is None
        assert denied.detected and denied.suspended


class TestMonitorSupervisor:
    def test_lifecycle_guards(self, machine):
        supervisor = MonitorSupervisor(machine.vfs)
        with pytest.raises(RuntimeError):
            supervisor.checkpoint()
        supervisor.start()
        with pytest.raises(RuntimeError):
            supervisor.start()
        supervisor.crash()
        assert supervisor.stats() == {"crashes": 1, "restarts": 0,
                                      "running": False}
        supervisor.restart()
        assert supervisor.monitor is not None
        supervisor.stop()

    def test_restart_without_checkpoint_starts_fresh(self, machine):
        supervisor = MonitorSupervisor(machine.vfs)
        monitor = supervisor.restart()
        assert monitor.attached
        supervisor.stop()
