"""Shannon entropy, the paper's weighting formula, weighted means."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.entropy import (WeightedEntropyMean, corrected_entropy,
                           entropy_weight, shannon_entropy,
                           windowed_entropy)


class TestShannonEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant_is_zero(self):
        assert shannon_entropy(b"\x00" * 1000) == 0.0

    def test_two_symbols_equal_is_one_bit(self):
        assert shannon_entropy(b"ab" * 500) == pytest.approx(1.0)

    def test_all_256_bytes_equal_is_eight_bits(self):
        assert shannon_entropy(bytes(range(256)) * 4) == pytest.approx(8.0)

    def test_random_data_near_eight(self):
        noise = random.Random(0).randbytes(65536)
        assert shannon_entropy(noise) > 7.99

    def test_english_text_in_expected_band(self):
        from repro.corpus.wordlists import paragraphs
        text = paragraphs(random.Random(1), 20000).encode()
        assert 3.8 <= shannon_entropy(text) <= 4.8

    @given(st.binary(min_size=1, max_size=2048))
    def test_bounds(self, data):
        e = shannon_entropy(data)
        assert 0.0 <= e <= 8.0

    @given(st.binary(min_size=1, max_size=512))
    def test_permutation_invariant(self, data):
        shuffled = bytes(sorted(data))
        assert shannon_entropy(data) == pytest.approx(
            shannon_entropy(shuffled))

    @given(st.binary(min_size=1, max_size=512))
    def test_duplication_invariant(self, data):
        assert shannon_entropy(data) == pytest.approx(
            shannon_entropy(data * 3))


class TestCorrectedEntropy:
    def test_small_ciphertext_reads_near_eight(self):
        chunk = random.Random(3).randbytes(2048)
        assert shannon_entropy(chunk) < 7.95      # plug-in underestimates
        assert corrected_entropy(chunk) > 7.97    # correction restores it

    def test_clamped_at_eight(self):
        assert corrected_entropy(random.Random(4).randbytes(300)) <= 8.0

    def test_structured_data_unaffected_much(self):
        text = b"the quick brown fox " * 200
        assert abs(corrected_entropy(text) - shannon_entropy(text)) < 0.01

    def test_empty_is_zero(self):
        assert corrected_entropy(b"") == 0.0

    @given(st.binary(min_size=1, max_size=2048))
    def test_correction_never_decreases(self, data):
        assert corrected_entropy(data) >= shannon_entropy(data) - 1e-9


class TestWindowedEntropy:
    def test_short_input_empty(self):
        assert windowed_entropy(b"short", 64, 16).size == 0

    def test_window_count(self):
        values = windowed_entropy(bytes(1024), 64, 16)
        assert values.size == (1024 - 64) // 16 + 1

    def test_matches_scalar_computation(self):
        data = random.Random(5).randbytes(256)
        values = windowed_entropy(data, 64, 16)
        expected = shannon_entropy(data[16:80])
        assert values[1] == pytest.approx(expected)

    def test_zero_region_scores_zero(self):
        data = bytes(64) + random.Random(6).randbytes(64)
        values = windowed_entropy(data, 64, 64)
        assert values[0] == 0.0
        assert values[1] > 5.0


class TestWeightFormula:
    def test_paper_formula(self):
        # w = 0.125 * round(e) * b
        assert entropy_weight(7.6, 1000) == 0.125 * 8 * 1000
        assert entropy_weight(3.2, 10) == 0.125 * 3 * 10

    def test_low_entropy_zero_weight(self):
        # entropy rounding to 0 gives zero weight: ransom notes of
        # near-constant bytes cannot influence the mean at all
        assert entropy_weight(0.4, 100000) == 0.0

    def test_weight_scales_with_bytes(self):
        assert entropy_weight(8.0, 2000) == 2 * entropy_weight(8.0, 1000)


class TestWeightedMean:
    def test_no_observations_is_none(self):
        assert WeightedEntropyMean().value is None

    def test_single_observation(self):
        mean = WeightedEntropyMean()
        data = bytes(range(256)) * 4
        mean.update(data)
        assert mean.value == pytest.approx(8.0)

    def test_small_low_entropy_writes_cannot_drag_mean(self):
        """The §IV-C1 motivation: ransom notes barely move Pwrite."""
        mean = WeightedEntropyMean()
        mean.update(random.Random(1).randbytes(50000))     # bulk cipher
        high = mean.value
        for _ in range(20):
            mean.update(b"PAY THE RANSOM NOW!!\n" * 10)    # notes
        assert mean.value > high - 0.35

    def test_ops_counter(self):
        mean = WeightedEntropyMean()
        mean.update(b"abcd" * 100)
        mean.update(b"efgh" * 100)
        assert mean.ops == 2

    def test_corrected_flag_changes_estimator(self):
        chunk = random.Random(2).randbytes(1024)
        plain = WeightedEntropyMean(corrected=False)
        fixed = WeightedEntropyMean(corrected=True)
        plain.update(chunk)
        fixed.update(chunk)
        assert fixed.value > plain.value

    @given(st.lists(st.binary(min_size=1, max_size=400), min_size=1,
                    max_size=10))
    def test_mean_within_observed_range(self, chunks):
        mean = WeightedEntropyMean()
        entropies = [mean.update(chunk) for chunk in chunks]
        if mean.value is not None:
            assert min(entropies) - 1e-9 <= mean.value <= max(entropies) + 1e-9
