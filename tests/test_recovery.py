"""Shadow-copy recovery after a contained attack."""

import pytest

from repro.fs import BaselineIndex, DOCUMENTS, ShadowCopyService
from repro.ransomware import RansomwareSample, SampleProfile, working_cohort
from repro.recovery import recover_from_shadow
from repro.sandbox import VirtualMachine, run_sample


@pytest.fixture
def attacked(small_corpus):
    """A machine where a monitored sample was stopped mid-attack."""
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    machine.shadow.create(4, DOCUMENTS)
    baseline = BaselineIndex(machine.vfs, DOCUMENTS)
    profile = SampleProfile("testfam", 0, "A", seed=42,
                            extensions=(".txt", ".pdf"), max_files=6,
                            rename_suffix=None, note_mode="none")
    machine.run_program(RansomwareSample(profile))
    yield machine, baseline
    machine.revert()


class TestRecovery:
    def test_full_recovery_when_shadows_survive(self, attacked):
        machine, baseline = attacked
        before = machine.assess().files_lost
        assert before == 6
        report = recover_from_shadow(machine.vfs, baseline, machine.shadow)
        assert len(report.restored) == 6
        assert report.recovery_rate == 1.0
        assert machine.assess().files_lost == 0

    def test_nothing_recoverable_after_vss_wipe(self, attacked):
        """The TeslaCrypt ritual pays off for the attacker."""
        machine, baseline = attacked
        machine.shadow.delete_all(4)
        report = recover_from_shadow(machine.vfs, baseline, machine.shadow)
        assert not report.restored
        assert len(report.unrecoverable) == 6
        assert report.recovery_rate == 0.0

    def test_verification_rejects_poisoned_shadow(self, small_corpus):
        """A shadow copy taken after partial damage must not restore
        ciphertext as if it were clean data."""
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        baseline = BaselineIndex(machine.vfs, DOCUMENTS)
        profile = SampleProfile("testfam", 0, "A", seed=7,
                                extensions=(".txt",), max_files=3,
                                rename_suffix=None, note_mode="none")
        machine.run_program(RansomwareSample(profile))
        machine.shadow.create(4, DOCUMENTS)   # too late: snapshot of damage
        report = recover_from_shadow(machine.vfs, baseline, machine.shadow,
                                     verify=True)
        assert not report.restored
        assert len(report.unrecoverable) == 3
        machine.revert()

    def test_clean_machine_reports_all_intact(self, small_corpus):
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        machine.shadow.create(4, DOCUMENTS)
        baseline = BaselineIndex(machine.vfs, DOCUMENTS)
        report = recover_from_shadow(machine.vfs, baseline, machine.shadow)
        assert not report.restored and not report.unrecoverable
        assert report.recovery_rate == 1.0
        assert "intact" in report.summary()

    def test_end_to_end_detect_then_recover(self, small_corpus):
        """The full defensive loop: snapshot, detect, contain, restore."""
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        machine.shadow.create(4, DOCUMENTS)
        baseline = BaselineIndex(machine.vfs, DOCUMENTS)
        # CryptoLocker does not wipe shadow copies
        sample = next(s for s in working_cohort()
                      if s.profile.family == "cryptolocker")
        result = run_sample(machine, sample)
        assert result.detected
        # run_sample reverted the machine; rerun unmonitored to keep damage
        from repro.ransomware import instantiate
        machine.shadow.create(4, DOCUMENTS)
        machine.run_program(instantiate(sample.profile))
        report = recover_from_shadow(machine.vfs, baseline, machine.shadow)
        assert machine.assess().files_lost == 0
        machine.revert()
