"""Process table: families, suspension, lifecycle."""

import pytest

from repro.fs import ProcessState, ProcessSuspended, ProcessTable


@pytest.fixture
def table():
    return ProcessTable()


class TestLifecycle:
    def test_spawn_assigns_distinct_pids(self, table):
        a = table.spawn("a.exe")
        b = table.spawn("b.exe")
        assert a.pid != b.pid
        assert a.state is ProcessState.RUNNING

    def test_spawn_with_unknown_parent_raises(self, table):
        with pytest.raises(KeyError):
            table.spawn("child.exe", parent_pid=99999)

    def test_exit(self, table):
        proc = table.spawn("a.exe")
        table.exit(proc.pid)
        with pytest.raises(ProcessSuspended):
            table.check_runnable(proc.pid)

    def test_runnable_check_passes_for_running(self, table):
        proc = table.spawn("a.exe")
        table.check_runnable(proc.pid)  # no exception


class TestFamilies:
    def test_root_of_orphan_is_itself(self, table):
        proc = table.spawn("a.exe")
        assert table.family_root(proc.pid) == proc.pid

    def test_child_resolves_to_root(self, table):
        root = table.spawn("dropper.exe")
        child = table.spawn("payload.exe", parent_pid=root.pid)
        grandchild = table.spawn("drone.exe", parent_pid=child.pid)
        assert table.family_root(grandchild.pid) == root.pid

    def test_family_members_collects_tree(self, table):
        root = table.spawn("dropper.exe")
        child = table.spawn("payload.exe", parent_pid=root.pid)
        other = table.spawn("unrelated.exe")
        members = table.family_members(child.pid)
        assert set(members) == {root.pid, child.pid}
        assert other.pid not in members

    def test_system_parent_breaks_family_chain(self, table):
        system = table.spawn("services.exe", is_system=True)
        app = table.spawn("word.exe", parent_pid=system.pid)
        assert table.family_root(app.pid) == app.pid


class TestSuspension:
    def test_suspend_family_parks_all_members(self, table):
        root = table.spawn("dropper.exe")
        child = table.spawn("payload.exe", parent_pid=root.pid)
        table.suspend_family(child.pid, "cryptodrop")
        for pid in (root.pid, child.pid):
            with pytest.raises(ProcessSuspended):
                table.check_runnable(pid)

    def test_suspend_reason_recorded(self, table):
        proc = table.spawn("evil.exe")
        table.suspend_family(proc.pid, "score over threshold")
        assert table.get(proc.pid).suspend_reason == "score over threshold"

    def test_resume_family(self, table):
        proc = table.spawn("word.exe")
        table.suspend_family(proc.pid, "false alarm")
        table.resume_family(proc.pid)
        table.check_runnable(proc.pid)

    def test_exited_processes_not_resurrected(self, table):
        root = table.spawn("a.exe")
        child = table.spawn("b.exe", parent_pid=root.pid)
        table.exit(child.pid)
        table.suspend_family(root.pid, "x")
        table.resume_family(root.pid)
        with pytest.raises(ProcessSuspended):
            table.check_runnable(child.pid)
