"""Unit coverage for the smaller corners: nodes, handles, config,
notes, cipher engines, experiment scaffolding, CLI wiring."""

import random

import pytest

from repro.core import CryptoDropConfig, default_config
from repro.fs import DOCUMENTS, FileAttributes, FileNotFound, WinPath
from repro.fs.nodes import DirNode, FileNode, NodeIdAllocator


class TestNodes:
    def test_node_ids_monotonic(self):
        alloc = NodeIdAllocator()
        ids = [alloc.next_id() for _ in range(5)]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_file_node_rw(self):
        node = FileNode(1, b"hello")
        assert node.read_bytes() == b"hello"
        assert node.read_bytes(1, 3) == b"ell"
        node.write_bytes(5, b" world", now_us=9.0)
        assert node.read_bytes() == b"hello world"
        assert node.modified_us == 9.0

    def test_file_node_sparse_write(self):
        node = FileNode(1)
        node.write_bytes(4, b"x", now_us=0.0)
        assert node.read_bytes() == b"\x00\x00\x00\x00x"

    def test_file_node_truncate(self):
        node = FileNode(1, b"abcdef")
        node.truncate(2, now_us=1.0)
        assert node.read_bytes() == b"ab"

    def test_dir_node_case_preserving(self):
        directory = DirNode(1)
        directory.put("ReadMe.TXT", FileNode(2))
        assert "readme.txt" in directory
        assert directory.display_name("README.txt") == "ReadMe.TXT"
        assert list(directory.names()) == ["ReadMe.TXT"]

    def test_dir_node_require_missing(self):
        with pytest.raises(FileNotFound):
            DirNode(1).require("ghost")

    def test_dir_node_remove_missing(self):
        with pytest.raises(FileNotFound):
            DirNode(1).remove("ghost")

    def test_attrs_copy_is_independent(self):
        attrs = FileAttributes(read_only=True)
        clone = attrs.copy()
        clone.read_only = False
        assert attrs.read_only


class TestConfig:
    def test_with_overrides_returns_new_object(self):
        base = default_config()
        changed = base.with_overrides(non_union_threshold=123.0)
        assert changed.non_union_threshold == 123.0
        assert base.non_union_threshold == 200.0

    def test_default_config_kwargs(self):
        config = default_config(entropy_points=9.0)
        assert config.entropy_points == 9.0

    def test_is_protected(self):
        config = CryptoDropConfig()
        assert config.is_protected(DOCUMENTS / "a" / "b.txt")
        assert not config.is_protected(WinPath(r"C:\Windows\notepad.exe"))

    def test_indicators_enabled_lists_all_by_default(self):
        assert len(default_config().indicators_enabled()) == 5

    def test_config_is_hashable_for_experiment_cache(self):
        # campaign_at_scale keys its cache on (scale, config, ...)
        assert hash(default_config()) == hash(default_config())

    def test_paper_values_are_defaults(self):
        config = default_config()
        assert config.non_union_threshold == 200.0   # §V-A
        assert config.entropy_delta == 0.1           # §IV-C1


class TestNotesAndCiphers:
    def test_note_is_low_entropy_text(self):
        from repro.entropy import shannon_entropy
        from repro.ransomware import note_text
        text = note_text("cryptowall", random.Random(3))
        assert shannon_entropy(text.encode()) < 5.0

    def test_unknown_family_gets_default_filename(self):
        from repro.ransomware import NOTE_FILENAMES, write_note
        assert "default" in NOTE_FILENAMES

    def test_cipher_engine_describe(self):
        from repro.ransomware import CipherEngine
        kind, bits = CipherEngine("chacha", seed=1).describe()
        assert kind == "chacha" and bits == 256

    def test_cipher_engine_key_blob_unwrapped(self):
        from repro.ransomware import CipherEngine
        engine = CipherEngine("xor", seed=2)
        assert engine.key_blob() == engine.key32


class TestExperimentScaffolding:
    def test_scale_describe(self):
        from repro.experiments import FULL, TINY
        assert "all samples" in FULL.describe()
        assert "tiny" in TINY.describe()

    def test_full_scale_matches_paper_dimensions(self):
        from repro.experiments import FULL
        assert FULL.n_files == 5099 and FULL.n_dirs == 511
        assert FULL.per_family is None

    def test_fig6_rejects_unknown_suite(self):
        from repro.experiments import TINY, run_fig6
        with pytest.raises(ValueError):
            run_fig6(TINY, suite="every")

    def test_ascii_cdf_single_point(self):
        from repro.experiments import ascii_cdf
        assert "1.0 +" in ascii_cdf([(3, 1.0)])

    def test_ascii_cdf_empty(self):
        from repro.experiments import ascii_cdf
        assert ascii_cdf([]) == "(no data)"


class TestCliWiring:
    def test_every_cli_experiment_is_callable(self):
        from repro.__main__ import _EXPERIMENTS
        for name, runner in _EXPERIMENTS.items():
            assert callable(runner), name

    def test_cli_scales_cover_all(self):
        from repro.__main__ import _SCALES
        assert set(_SCALES) == {"tiny", "small", "full"}
