"""Filter-driver stack behaviour."""

import pytest

from repro.fs import (DOCUMENTS, Decision, FilterDriver, OpKind,
                      OperationDenied, PostVerdict, ProcessSuspended)


class DenyWrites(FilterDriver):
    name = "deny-writes"

    def pre_operation(self, op):
        if op.kind is OpKind.WRITE:
            return Decision.DENY
        return Decision.ALLOW


class SuspendOnDelete(FilterDriver):
    name = "suspend-on-delete"

    def pre_operation(self, op):
        if op.kind is OpKind.DELETE:
            return Decision.SUSPEND
        return Decision.ALLOW


class PostSuspendAfterN(FilterDriver):
    name = "post-suspender"

    def __init__(self, limit):
        self.limit = limit
        self.seen = 0

    def post_operation(self, op):
        if op.kind is OpKind.WRITE:
            self.seen += 1
            if self.seen >= self.limit:
                return PostVerdict(suspend=True, reason="limit hit")
        return PostVerdict.ALLOW


class CountingFilter(FilterDriver):
    name = "counter"

    def __init__(self, cost=5.0):
        self.pre_ops = []
        self.post_ops = []
        self.cost = cost

    def pre_operation(self, op):
        self.pre_ops.append(op.kind)
        return Decision.ALLOW

    def post_operation(self, op):
        self.post_ops.append(op.kind)
        return PostVerdict.ALLOW

    def added_latency_us(self, op):
        return self.cost


class TestPreOperation:
    def test_deny_fails_single_operation(self, vfs, pid):
        vfs.filters.attach(DenyWrites())
        handle = vfs.open(pid, DOCUMENTS / "f", "w", create=True)
        with pytest.raises(OperationDenied):
            vfs.write(pid, handle, b"blocked")
        # the handle and process are still healthy
        vfs.close(pid, handle)
        assert vfs.read_file(pid, DOCUMENTS / "f") == b""

    def test_suspend_unwinds_and_parks_process(self, vfs, pid):
        vfs.filters.attach(SuspendOnDelete())
        vfs.write_file(pid, DOCUMENTS / "f", b"x")
        with pytest.raises(ProcessSuspended):
            vfs.delete(pid, DOCUMENTS / "f")
        # file survived; process may no longer issue I/O
        assert vfs.exists(DOCUMENTS / "f")
        with pytest.raises(ProcessSuspended):
            vfs.read_file(pid, DOCUMENTS / "f")

    def test_denied_op_does_not_mutate(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "f", b"original")
        vfs.filters.attach(DenyWrites())
        handle = vfs.open(pid, DOCUMENTS / "f", "rw")
        with pytest.raises(OperationDenied):
            vfs.write(pid, handle, b"ciphertext")
        vfs.close(pid, handle)
        assert vfs.read_file(pid, DOCUMENTS / "f") == b"original"


class TestPostOperation:
    def test_post_suspend_lands_after_completion(self, vfs, pid):
        vfs.filters.attach(PostSuspendAfterN(limit=2))
        vfs.write_file(pid, DOCUMENTS / "a", b"1")  # write #1 passes
        with pytest.raises(ProcessSuspended):
            # write #2 completes, then the filter suspends
            vfs.write_file(pid, DOCUMENTS / "b", b"2")
        assert vfs.peek_read(DOCUMENTS / "b") == b"2"

    def test_other_processes_unaffected(self, vfs, pid):
        vfs.filters.attach(PostSuspendAfterN(limit=1))
        with pytest.raises(ProcessSuspended):
            vfs.write_file(pid, DOCUMENTS / "a", b"1")
        other = vfs.processes.spawn("clean.exe").pid
        assert vfs.read_file(other, DOCUMENTS / "a") == b"1"


class TestStackMechanics:
    def test_both_hooks_see_operations(self, vfs, pid):
        counter = CountingFilter()
        vfs.filters.attach(counter)
        vfs.write_file(pid, DOCUMENTS / "f", b"x")
        assert OpKind.CREATE in counter.pre_ops
        assert OpKind.WRITE in counter.post_ops
        assert OpKind.CLOSE in counter.post_ops

    def test_detach_stops_delivery(self, vfs, pid):
        counter = CountingFilter()
        vfs.filters.attach(counter)
        vfs.filters.detach(counter)
        vfs.write_file(pid, DOCUMENTS / "f", b"x")
        assert not counter.pre_ops

    def test_double_attach_rejected(self, vfs):
        counter = CountingFilter()
        vfs.filters.attach(counter)
        with pytest.raises(ValueError):
            vfs.filters.attach(counter)

    def test_filter_latency_charged_to_clock(self, vfs, pid):
        baseline_vfs_time = vfs.clock.now_us
        counter = CountingFilter(cost=1000.0)
        vfs.filters.attach(counter)
        vfs.write_file(pid, DOCUMENTS / "f", b"x")
        # create+write+close, each charged pre+post = 6 kUS minimum
        assert vfs.clock.now_us - baseline_vfs_time >= 6000.0

    def test_latency_ledger_accumulates(self, vfs, pid):
        counter = CountingFilter(cost=10.0)
        vfs.filters.attach(counter)
        vfs.write_file(pid, DOCUMENTS / "f", b"x")
        ledger = vfs.filters.latency_ledger
        assert ledger[("counter", "write")][0] >= 1
        assert ledger[("counter", "write")][1] > 0

    def test_first_denial_short_circuits(self, vfs, pid):
        counter = CountingFilter()
        vfs.filters.attach(DenyWrites())
        vfs.filters.attach(counter)
        handle = vfs.open(pid, DOCUMENTS / "f", "w", create=True)
        with pytest.raises(OperationDenied):
            vfs.write(pid, handle, b"x")
        assert OpKind.WRITE not in counter.pre_ops
