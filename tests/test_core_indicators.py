"""The five indicators, in isolation."""

import random

import pytest

from repro.core import (ProcessDeletionState, ProcessEntropyState,
                        ProcessFunnelState, similarity_collapsed,
                        similarity_score, type_changed)
from repro.core.filestate import FileStateCache
from repro.corpus.wordlists import paragraphs
from repro.fs import WinPath
from repro.magic import EMPTY, FILE_TYPES, identify


def _text(seed, n=12000):
    return paragraphs(random.Random(seed), n).encode()


class TestEntropyIndicator:
    def test_no_delta_before_first_read(self):
        state = ProcessEntropyState()
        assert state.on_write(random.Random(0).randbytes(4096)) is None

    def test_no_delta_before_first_write(self):
        state = ProcessEntropyState()
        state.on_read(_text(1))
        assert state.delta() is None

    def test_ransomware_pattern_triggers(self):
        state = ProcessEntropyState()
        state.on_read(_text(2))                                # ~4.4 bits
        delta = state.on_write(random.Random(2).randbytes(8192))  # ~8 bits
        assert delta is not None and delta >= 0.1

    def test_symmetric_io_does_not_trigger(self):
        state = ProcessEntropyState()
        rng = random.Random(3)
        state.on_read(rng.randbytes(8192))
        assert state.on_write(rng.randbytes(8192)) is None

    def test_delta_clamped_at_zero(self):
        state = ProcessEntropyState()
        state.on_read(random.Random(4).randbytes(8192))
        state.on_write(_text(4))
        assert state.delta() == 0.0

    def test_empty_ops_ignored(self):
        state = ProcessEntropyState()
        state.on_read(b"")
        assert state.on_write(b"") is None
        assert state.delta() is None

    def test_ransom_notes_cannot_hide_the_delta(self):
        """§IV-C1: low-entropy note drops are weight-starved."""
        state = ProcessEntropyState()
        state.on_read(_text(5))
        state.on_write(random.Random(5).randbytes(30000))
        for _ in range(30):
            state.on_write(b"SEND BITCOIN TO RECOVER YOUR FILES\n" * 8)
        assert state.current_trigger() is not None

    def test_paper_threshold_value(self):
        assert ProcessEntropyState().delta_threshold == 0.1


class TestTypeChangeIndicator:
    def test_same_type_no_change(self):
        assert not type_changed(FILE_TYPES["pdf"], FILE_TYPES["pdf"])

    def test_pdf_to_data_changes(self):
        from repro.magic import DATA
        assert type_changed(FILE_TYPES["pdf"], DATA)

    def test_cross_format_changes(self):
        assert type_changed(FILE_TYPES["txt"], FILE_TYPES["exe"])

    def test_empty_before_ignored(self):
        assert not type_changed(EMPTY, FILE_TYPES["pdf"])

    def test_empty_after_ignored(self):
        assert not type_changed(FILE_TYPES["pdf"], EMPTY)

    def test_none_ignored(self):
        assert not type_changed(None, FILE_TYPES["pdf"])
        assert not type_changed(FILE_TYPES["pdf"], None)

    def test_real_encryption_changes_type(self):
        from repro.corpus.content import make_pdf
        data = make_pdf(random.Random(6), 8000)
        cipher = random.Random(6).randbytes(len(data))
        assert type_changed(identify(data), identify(cipher))


class TestSimilarityIndicator:
    def _record(self, data):
        cache = FileStateCache()
        return cache.ensure_baseline(1, WinPath(r"C:\d\f"), data)

    def test_encryption_collapses(self):
        data = _text(7)
        record = self._record(data)
        score = similarity_score(record, random.Random(7).randbytes(len(data)))
        assert similarity_collapsed(score)

    def test_append_does_not_collapse(self):
        data = _text(8)
        record = self._record(data)
        score = similarity_score(record, data + b" appended paragraph")
        assert score > 50
        assert not similarity_collapsed(score)

    def test_small_file_scores_none(self):
        record = self._record(b"tiny" * 20)
        assert similarity_score(record, random.Random(1).randbytes(80)) is None
        assert not similarity_collapsed(None)

    def test_born_empty_scores_none(self):
        cache = FileStateCache()
        record = cache.track_new(1, WinPath(r"C:\d\new"))
        assert similarity_score(record, _text(9)) is None

    def test_ctph_backend(self):
        cache = FileStateCache(backend="ctph")
        data = _text(10)
        record = cache.ensure_baseline(1, WinPath(r"C:\d\f"), data)
        score = similarity_score(record, random.Random(10).randbytes(len(data)),
                                 backend="ctph")
        assert similarity_collapsed(score)

    def test_unknown_backend_rejected(self):
        record = self._record(_text(11))
        with pytest.raises(ValueError):
            similarity_score(record, b"x" * 1000, backend="fuzzy")


class TestDeletionIndicator:
    def test_allowance_absorbs_temp_churn(self):
        state = ProcessDeletionState(allowance=4)
        assert [state.on_delete() for _ in range(4)] == [False] * 4

    def test_scores_beyond_allowance(self):
        state = ProcessDeletionState(allowance=4)
        for _ in range(4):
            state.on_delete()
        assert state.on_delete() is True
        assert state.count == 5

    def test_zero_allowance(self):
        state = ProcessDeletionState(allowance=0)
        assert state.on_delete() is True


class TestFunnelingIndicator:
    def test_below_spread_never_scores(self):
        state = ProcessFunnelState(spread_threshold=5)
        assert not any(state.on_read_type(t)
                       for t in ("pdf", "docx", "txt", "jpg"))

    def test_scores_at_spread(self):
        state = ProcessFunnelState(spread_threshold=5)
        types = ["pdf", "docx", "txt", "jpg", "xlsx"]
        hits = [state.on_read_type(t) for t in types]
        assert hits == [False] * 4 + [True]

    def test_each_widening_scores_once(self):
        state = ProcessFunnelState(spread_threshold=2)
        state.on_read_type("a")
        assert state.on_read_type("b")
        assert not state.on_read_type("b")     # repeat type: no new spread
        assert state.on_read_type("c")

    def test_writes_narrow_the_spread(self):
        state = ProcessFunnelState(spread_threshold=3)
        for t in ("a", "b"):
            state.on_read_type(t)
        state.on_write_type("x")
        state.on_write_type("y")
        assert not state.on_read_type("c")     # spread 3-2=1 < 3
        assert state.spread == 1

    def test_word_processor_profile_is_quiet(self):
        """§III-D: reads pictures + audio, writes one document type."""
        state = ProcessFunnelState(spread_threshold=5)
        state.on_write_type("docx")
        hits = [state.on_read_type(t) for t in ("jpg", "png", "wav", "docx")]
        assert not any(hits)
