"""The telemetry subsystem (ISSUE 4): bus, metrics, exporters, timeline,
and its integration contracts — timeline agrees with the detection
record, engine checkpoints carry metric counters but never events, trace
replay reproduces the event sequence, campaigns merge snapshots."""

import json

import pytest

from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.ransomware import cohort_by_family, instantiate
from repro.sandbox import VirtualMachine, run_campaign
from repro.sandbox.runner import run_sample
from repro.telemetry import (EVENT_TYPES, BaselineResolved, EventBus,
                             IndicatorFired, JsonlWriter, MetricsRegistry,
                             ProcessSuspended, ScoreDelta, TelemetrySession,
                             UnionBoost, build_timeline, event_from_dict,
                             indicator_totals, merge_telemetry_dicts,
                             read_jsonl, render_prometheus,
                             validate_exposition, write_jsonl)
from repro.trace import TraceRecorder, replay_trace


def telemetry_config(**overrides) -> CryptoDropConfig:
    return CryptoDropConfig(telemetry_enabled=True, **overrides)


def teslacrypt_sample():
    return instantiate(cohort_by_family()["teslacrypt"][0].profile)


@pytest.fixture(scope="module")
def detected_run(small_corpus):
    """One TeslaCrypt run with telemetry on: monitor, outcome, damage."""
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    monitor = CryptoDropMonitor(machine.vfs, telemetry_config()).attach()
    outcome = machine.run_program(teslacrypt_sample())
    damage = machine.assess()
    monitor.detach()
    machine.revert()
    return monitor, outcome, damage


# ---------------------------------------------------------------------------
# event bus
# ---------------------------------------------------------------------------

class TestEventBus:
    def test_ring_is_bounded_and_counts_drops(self):
        bus = EventBus(capacity=3)
        for i in range(5):
            bus.emit(IndicatorFired(float(i), indicator=f"e{i}"))
        assert len(bus) == 3
        assert bus.emitted == 5
        assert bus.dropped == 2
        # newest events survive
        assert [e.indicator for e in bus.events()] == ["e2", "e3", "e4"]

    def test_subscribers_see_every_event_despite_evictions(self):
        bus = EventBus(capacity=2)
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        for i in range(4):
            bus.emit(IndicatorFired(float(i)))
        assert len(seen) == 4
        unsubscribe()
        bus.emit(IndicatorFired(9.0))
        assert len(seen) == 4

    def test_kind_filter_and_counts(self):
        bus = EventBus()
        bus.emit(IndicatorFired(1.0))
        bus.emit(ScoreDelta(2.0))
        bus.emit(IndicatorFired(3.0))
        assert len(bus.events("indicator_fired")) == 2
        assert bus.counts_by_kind() == {"indicator_fired": 2,
                                        "score_delta": 1}

    def test_clear_keeps_lifetime_counters(self):
        bus = EventBus()
        bus.emit(IndicatorFired(1.0))
        bus.clear()
        assert len(bus) == 0 and bus.emitted == 1

    def test_every_event_kind_round_trips_through_dict(self):
        for kind, cls in EVENT_TYPES.items():
            event = cls(timestamp_us=12.5)
            encoded = event.as_dict()
            assert encoded["kind"] == kind
            json.dumps(encoded)
            assert event_from_dict(encoded) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "telepathy"})


class TestDisabledPath:
    def test_session_none_unless_config_enables(self):
        assert TelemetrySession.from_config(CryptoDropConfig()) is None
        assert TelemetrySession.from_config(telemetry_config()) is not None

    def test_disabled_monitor_carries_no_session(self, vfs):
        monitor = CryptoDropMonitor(vfs)
        assert monitor.telemetry is None
        assert monitor.telemetry_export() is None
        with pytest.raises(RuntimeError):
            monitor.timeline()

    def test_detection_identical_with_and_without(self, machine):
        results = {}
        for label, config in (("off", CryptoDropConfig()),
                              ("on", telemetry_config())):
            results[label] = run_sample(machine, teslacrypt_sample(), config)
        off, on = results["off"], results["on"]
        assert (off.detected, off.files_lost, off.score, off.union_fired) \
            == (on.detected, on.files_lost, on.score, on.union_fired)
        assert off.telemetry is None
        assert on.telemetry is not None


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits", "h")
        hits.inc(indicator="entropy")
        hits.inc(2.0, indicator="entropy")
        hits.inc(indicator="similarity")
        assert hits.value(indicator="entropy") == 3.0
        assert hits.total() == 4.0

    def test_gauge_sets_instead_of_accumulating(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value() == 2.0

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", (1, 10, 100))
        for value in (0.5, 5, 50, 500):
            h.observe(value)
        series = dict(h.series())[()]
        assert series.bucket_counts == [1, 1, 1, 1]
        assert series.count == 4
        assert series.sum == 555.5

    def test_type_and_bounds_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 3))

    def test_checkpoint_restore_fixed_point(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3.0, kind="a")
        registry.histogram("h", (1, 10)).observe(4.0, op="close")
        snapshot = registry.checkpoint()
        json.dumps(snapshot)
        restored = MetricsRegistry()
        restored.restore(snapshot)
        assert restored.checkpoint() == snapshot

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.counter("c").inc(2.0)
            registry.histogram("h", (1,)).observe(0.5)
        a.merge(b.checkpoint())
        assert a.get("c").total() == 4.0
        assert a.get("h").total_count() == 2


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        events = [IndicatorFired(1.0, root_pid=7, indicator="entropy",
                                 points=2.5, path="C:\\x"),
                  ProcessSuspended(2.0, root_pid=7, score=200.0)]
        path = tmp_path / "events.jsonl"
        assert write_jsonl(events, path) == 2
        assert read_jsonl(path) == events

    def test_jsonl_writer_as_subscriber(self, tmp_path):
        bus = EventBus(capacity=1)   # ring evicts, file must not
        path = tmp_path / "stream.jsonl"
        with JsonlWriter(path) as sink:
            bus.subscribe(sink)
            for i in range(3):
                bus.emit(ScoreDelta(float(i), score_after=float(i)))
        assert sink.written == 3
        assert [e.timestamp_us for e in read_jsonl(path)] == [0.0, 1.0, 2.0]

    def test_prometheus_renders_valid_exposition(self, detected_run):
        monitor, _outcome, _damage = detected_run
        text = monitor.telemetry.render_prometheus()
        assert validate_exposition(text) == []
        assert "cryptodrop_indicator_hits_total" in text
        assert 'le="+Inf"' in text

    def test_exposition_validator_catches_breakage(self):
        assert validate_exposition("orphan_metric 1\n")
        assert validate_exposition("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"
                                   "h_bucket{le=\"+Inf\"} 3\n")


# ---------------------------------------------------------------------------
# integration: timeline vs detection record
# ---------------------------------------------------------------------------

class TestTimelineIntegration:
    def test_timeline_matches_detection(self, detected_run):
        monitor, _outcome, damage = detected_run
        detection = monitor.detections[0]
        timeline = monitor.timeline()
        assert timeline.detected
        assert timeline.root_pid == detection.root_pid
        assert timeline.suspension.score == detection.score
        assert timeline.suspension.threshold == detection.threshold
        assert timeline.union_fired == detection.union_fired
        assert timeline.final_score == detection.score
        # the acceptance-criteria triple: same files lost, score, union
        # (the runner fills Detection.files_lost post-assessment; this
        # fixture runs the machine directly, so feed both the same way)
        timeline.files_lost = damage.files_lost
        detection.files_lost = damage.files_lost
        assert timeline.files_lost == detection.files_lost

    def test_timeline_trajectory_matches_scoreboard(self, detected_run):
        monitor, _outcome, _damage = detected_run
        timeline = monitor.timeline()
        row = monitor.engine.row_of(timeline.root_pid)
        assert [e.score_after for e in timeline.entries] \
            == [e.score_after for e in row.history]
        assert timeline.indicator_totals() == indicator_totals(row.history)

    def test_events_survive_export_round_trip(self, detected_run):
        monitor, _outcome, _damage = detected_run
        export = monitor.telemetry_export()
        json.dumps(export)
        rebuilt = build_timeline(event_from_dict(e)
                                 for e in export["events"])
        assert rebuilt.final_score == monitor.timeline().final_score
        assert rebuilt.detected

    def test_run_sample_snapshot_matches_detection(self, machine):
        result = run_sample(machine, teslacrypt_sample(), telemetry_config())
        assert result.detected
        timeline = build_timeline(event_from_dict(e)
                                  for e in result.telemetry["events"])
        assert timeline.detected
        assert timeline.final_score == result.score
        assert timeline.union_fired == result.union_fired
        # the files-lost histogram was fed post-assessment
        lost = result.telemetry["metrics"]["cryptodrop_detection_files_lost"]
        (_labels, series), = lost["state"]
        assert series["count"] == 1
        assert series["sum"] == result.files_lost

    def test_baseline_resolution_events_present(self, detected_run):
        monitor, _outcome, _damage = detected_run
        sources = {e.source for e in monitor.telemetry.bus.events()
                   if isinstance(e, BaselineResolved)}
        assert sources   # at least one resolution path exercised
        assert sources <= {"lru", "store", "live", "deferred"}


class TestIndicatorTotals:
    def test_from_tuple_trajectory(self):
        trajectory = [(1.0, 2.5, "entropy"), (2.0, 7.5, "type_change"),
                      (3.0, 10.0, "entropy")]
        assert indicator_totals(trajectory) == {"entropy": 5.0,
                                                "type_change": 5.0}

    def test_legacy_two_tuples_skipped_but_anchor_scores(self):
        assert indicator_totals([(1.0, 10.0), (2.0, 14.0, "entropy")]) \
            == {"entropy": 4.0}

    def test_from_attr_entries(self):
        events = [ScoreDelta(1.0, indicator="entropy", points=2.5),
                  UnionBoost(2.0, bonus=40.0)]
        totals = indicator_totals(
            [events[0],
             type("E", (), {"indicator": "union", "points": 40.0})()])
        assert totals == {"entropy": 2.5, "union": 40.0}


# ---------------------------------------------------------------------------
# checkpoint: counters travel, events never
# ---------------------------------------------------------------------------

class TestCheckpoint:
    def test_metric_counters_travel_events_do_not(self, machine):
        monitor = CryptoDropMonitor(machine.vfs, telemetry_config()).attach()
        machine.run_program(teslacrypt_sample())
        monitor.detach()
        state = monitor.checkpoint()
        json.dumps(state)
        assert state["telemetry"] is not None
        assert "events" not in json.dumps(state["telemetry"])
        hits = monitor.telemetry.indicator_hits.total()
        assert hits > 0

        restored = CryptoDropMonitor.from_checkpoint(
            machine.vfs, state, telemetry_config())
        assert restored.telemetry.indicator_hits.total() == hits
        # events are run-local: the restored bus starts empty
        assert len(restored.telemetry.bus) == 0
        # fixed point: checkpointing the restored monitor is identical
        assert restored.checkpoint()["telemetry"] == state["telemetry"]
        machine.revert()

    def test_disabled_checkpoint_has_no_telemetry_state(self, vfs):
        monitor = CryptoDropMonitor(vfs)
        state = monitor.checkpoint()
        assert state["telemetry"] is None
        # and restoring a telemetry-bearing state into a disabled monitor
        # is a no-op, not a crash
        state["telemetry"] = {"cryptodrop_indicator_hits_total": {
            "type": "counter", "help": "", "state": [[[], 3.0]]}}
        restored = CryptoDropMonitor.from_checkpoint(vfs, state)
        assert restored.telemetry is None


# ---------------------------------------------------------------------------
# trace interop
# ---------------------------------------------------------------------------

def event_shape(event):
    """Everything except timestamps and process identity — replay spawns
    fresh ``replay-<pid>.exe`` processes, so pids and names differ by
    construction; everything the detector decided must not."""
    out = event.as_dict()
    out.pop("timestamp_us")
    out.pop("root_pid", None)
    out.pop("process_name", None)
    return out


class TestTraceInterop:
    def test_replay_reproduces_event_sequence(self, small_corpus):
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        recorder = TraceRecorder()
        machine.vfs.filters.attach(recorder)
        monitor = CryptoDropMonitor(machine.vfs, telemetry_config()).attach()
        machine.run_program(teslacrypt_sample())
        monitor.detach()
        machine.vfs.filters.detach(recorder)
        machine.revert()
        live = [event_shape(e) for e in monitor.telemetry.bus.events()]

        sink = TelemetrySession()
        replayed_monitor, _machine = replay_trace(
            recorder.records, small_corpus, telemetry=sink)
        assert replayed_monitor.telemetry is sink
        replayed = [event_shape(e) for e in sink.bus.events()]
        assert replayed == live

    def test_replay_honours_config_without_explicit_sink(self, small_corpus):
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        recorder = TraceRecorder()
        machine.vfs.filters.attach(recorder)
        monitor = CryptoDropMonitor(machine.vfs).attach()
        machine.run_program(teslacrypt_sample())
        monitor.detach()
        machine.vfs.filters.detach(recorder)
        machine.revert()

        replayed_monitor, _machine = replay_trace(
            recorder.records, small_corpus, config=telemetry_config())
        assert replayed_monitor.telemetry is not None
        assert replayed_monitor.timeline().detected


# ---------------------------------------------------------------------------
# campaign aggregation
# ---------------------------------------------------------------------------

class TestCampaignAggregation:
    @pytest.fixture(scope="class")
    def campaign(self, small_corpus):
        profiles = [s.profile for s in cohort_by_family()["teslacrypt"][:2]]
        profiles += [s.profile
                     for s in cohort_by_family()["cryptodefense"][:1]]
        return run_campaign([instantiate(p) for p in profiles],
                            small_corpus, telemetry_config())

    def test_per_sample_snapshots_ride_results(self, campaign):
        assert all(r.telemetry is not None for r in campaign.results)
        assert campaign.telemetry is not None   # parent session (store)
        assert campaign.telemetry["counts_by_kind"].get("store_built") == 1

    def test_merged_stats_add_up(self, campaign):
        merged = campaign.telemetry_stats()
        assert merged["samples"] == len(campaign.results) + 1
        per_sample = sum(r.telemetry["bus"]["emitted"]
                         for r in campaign.results)
        assert merged["bus"]["emitted"] \
            == per_sample + campaign.telemetry["bus"]["emitted"]
        suspensions = merged["metrics"]["cryptodrop_suspensions_total"]
        assert sum(v for _k, v in suspensions["state"]) \
            == sum(1 for r in campaign.results if r.detected)
        json.dumps(merged)

    def test_merge_ignores_missing_snapshots(self, campaign):
        merged = merge_telemetry_dicts(
            [None, campaign.results[0].telemetry, {}])
        assert merged["samples"] == 1

    def test_merged_registry_renders_valid_exposition(self, campaign):
        from repro.telemetry import merge_metric_states
        merged = campaign.telemetry_stats()
        registry = merge_metric_states([merged["metrics"]])
        assert validate_exposition(render_prometheus(registry)) == []
