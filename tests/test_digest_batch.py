"""Batched digest kernel + deferred inspection scheduler (ISSUE 5).

Three bit-identity contracts, each against its scalar reference path:

* :func:`digest_many` / :func:`compare_many` must produce byte-identical
  digests and integer scores to the per-file vectorised and scalar
  implementations over ragged batches — empty inputs, sub-window blobs,
  boundary sizes, multi-group spans.
* The :class:`InspectionScheduler` must leave detection output — scores,
  verdicts, timelines — bit-identical with ``batch_digests`` on or off,
  while actually routing deferred captures through the batched kernel.
* The incremental write-entropy path (running per-handle histograms fed
  through ``corrected_entropy_from_counts``) must equal re-counting the
  full stream, and the batched store build must equal the serial one.
"""

import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.core.filestate import DigestCache
from repro.core.schedule import InspectionScheduler
from repro.corpus.baselines import BaselineStore
from repro.corpus.wordlists import paragraphs
from repro.crypto import chacha20_xor
from repro.entropy import (WeightedEntropyMean, corrected_entropies_from_histograms,
                           corrected_entropy, corrected_entropy_from_counts,
                           histograms_many)
from repro.fs import DOCUMENTS, ProcessSuspended, TEMP, VirtualFileSystem
from repro.simhash import compare, compare_many, digest_many, sdhash
from repro.simhash.sdhash import MIN_DIGEST_BYTES, WINDOW, sdhash_scalar

KEY, NONCE = bytes(32), bytes(12)


def _text(seed, n=6000):
    return paragraphs(random.Random(seed), n).encode()


def _ragged_batch():
    rng = random.Random(7)
    return [
        b"",                                   # empty
        b"short",                              # far below the digest floor
        rng.randbytes(WINDOW - 1),             # shorter than one window
        rng.randbytes(MIN_DIGEST_BYTES - 1),   # one byte under the floor
        rng.randbytes(MIN_DIGEST_BYTES),       # exactly at the floor
        bytes(2048),                           # zeros: typed, no features
        _text(1, 700),
        _text(2, 9000),
        rng.randbytes(4096),
        _text(3, 40_000),
        _text(2, 9000),                        # duplicate content
        b"ab" * 40,
    ]


class TestDigestMany:
    def test_empty_batch(self):
        assert digest_many([]) == []

    def test_bit_identical_to_per_file_paths(self):
        batch = _ragged_batch()
        results = digest_many(batch)
        assert len(results) == len(batch)
        for blob, got in zip(batch, results):
            vec = sdhash(blob)
            ref = sdhash_scalar(blob)
            if ref is None:
                assert vec is None and got is None
                continue
            assert got.hexdigest() == vec.hexdigest() == ref.hexdigest()
            assert got.n_features == ref.n_features
            assert len(got) == len(ref)
            assert got.source_len == ref.source_len

    def test_span_grouping_preserves_identity(self, monkeypatch):
        # force several concatenation groups so the group-boundary
        # bookkeeping (offsets, anchor filtering, popularity gaps) runs
        import importlib
        # the package re-exports the sdhash *function* under the same
        # name, so fetch the module itself
        mod = importlib.import_module("repro.simhash.sdhash")
        monkeypatch.setattr(mod, "_BATCH_SPAN_BYTES", 10_000)
        batch = _ragged_batch()
        for blob, got in zip(batch, mod.digest_many(batch)):
            ref = sdhash(blob)
            if ref is None:
                assert got is None
            else:
                assert got.hexdigest() == ref.hexdigest()

    def test_random_ragged_batches(self):
        rng = random.Random(11)
        for _ in range(5):
            batch = [rng.randbytes(rng.randrange(0, 3000))
                     + _text(rng.randrange(50), rng.randrange(0, 3000))
                     for _ in range(rng.randrange(1, 12))]
            for blob, got in zip(batch, digest_many(batch)):
                ref = sdhash(blob)
                if ref is None:
                    assert got is None
                else:
                    assert got.hexdigest() == ref.hexdigest()


class TestCompareMany:
    def test_empty(self):
        assert compare_many([]) == []

    def test_matches_pairwise_compare(self):
        digests = [sdhash(b) for b in _ragged_batch()]
        pairs = [(a, b) for a in digests for b in digests]
        scores = compare_many(pairs)
        assert scores == [compare(a, b) for a, b in pairs]

    def test_none_pairs_score_like_compare(self):
        d = sdhash(_text(4))
        pairs = [(None, None), (d, None), (None, d), (d, d)]
        assert compare_many(pairs) == [compare(a, b) for a, b in pairs]


@pytest.fixture
def env():
    def make(**overrides):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        vfs._ensure_dirs(TEMP)
        for i in range(12):
            vfs.peek_write(DOCUMENTS / f"doc{i}.txt", _text(i))
        config = CryptoDropConfig(telemetry_enabled=True, **overrides)
        monitor = CryptoDropMonitor(vfs, config=config).attach()
        pid = vfs.processes.spawn("sample.exe").pid
        return vfs, monitor, pid
    return make


def _encrypt_in_place(vfs, pid, path):
    handle = vfs.open(pid, path, "rw")
    data = vfs.read(pid, handle)
    vfs.seek(pid, handle, 0)
    vfs.write(pid, handle, chacha20_xor(KEY, NONCE, data))
    vfs.close(pid, handle)


def _run_encryptor(vfs, monitor, pid):
    try:
        for i in range(12):
            _encrypt_in_place(vfs, pid, DOCUMENTS / f"doc{i}.txt")
    except ProcessSuspended:
        pass


def _detection_output(monitor, pid):
    """Everything the ISSUE's identity invariant covers: verdicts,
    score trajectories, and the telemetry-rebuilt timeline."""
    report = monitor.export_report()
    timeline = monitor.timeline(root_pid=monitor.engine._root_pid(pid))
    return {
        "detections": report["detections"],
        "processes": report["processes"],
        "timeline": [(e.timestamp_us, e.indicator, e.points,
                      e.score_after, e.path) for e in timeline.entries],
        "union": None if timeline.union is None
                 else (timeline.union.timestamp_us,
                       timeline.union.score_after,
                       timeline.union.threshold_after),
    }


class TestSchedulerIdentity:
    def test_detection_output_identical_batch_on_off(self, env):
        outputs = []
        for batching in (True, False):
            vfs, monitor, pid = env(batch_digests=batching)
            _run_encryptor(vfs, monitor, pid)
            outputs.append(_detection_output(monitor, pid))
            monitor.detach()
        assert outputs[0] == outputs[1]

    def test_eager_path_identical_too(self, env):
        vfs, monitor, pid = env(lazy_close_digests=False,
                                batch_digests=False)
        _run_encryptor(vfs, monitor, pid)
        eager = _detection_output(monitor, pid)
        vfs, monitor, pid = env()
        _run_encryptor(vfs, monitor, pid)
        assert _detection_output(monitor, pid) == eager

    def test_checkpoints_identical_batch_on_off(self, env):
        states = []
        for batching in (True, False):
            vfs, monitor, pid = env(batch_digests=batching)
            _run_encryptor(vfs, monitor, pid)
            state = monitor.checkpoint()
            # the knob changes how digests materialise, never their value
            del state["telemetry"]
            del state["op_wall_us"]
            states.append(state)
        assert states[0] == states[1]

    def test_batched_run_actually_flushes(self, env):
        vfs, monitor, pid = env()
        _run_encryptor(vfs, monitor, pid)
        stats = monitor.stats()["scheduler"]
        assert stats["flushes"] >= 1
        assert stats["materialised"] >= 1
        assert stats["max_batch"] >= 1

    def test_batch_off_has_no_scheduler(self, env):
        vfs, monitor, pid = env(batch_digests=False)
        assert monitor.engine.scheduler is None
        assert monitor.stats()["scheduler"] is None
        assert monitor.flush_inspections() == 0


class TestSchedulerMechanics:
    def test_captures_enqueue_and_score_read_never_flushes(self, env):
        vfs, monitor, pid = env()
        scheduler = monitor.engine.scheduler
        # first write captures a baseline; with lazy digests on and no
        # comparison yet, the capture defers and enqueues
        handle = vfs.open(pid, DOCUMENTS / "doc0.txt", "rw")
        vfs.write(pid, handle, b"x")
        assert len(scheduler) >= 1
        # a pending digest is score-neutral by construction, so score
        # reads must not drain the scheduler (that would digest bytes
        # the lazy reference path never touches)
        monitor.score_of(pid)
        assert len(scheduler) >= 1
        assert monitor.flush_inspections() >= 1
        assert len(scheduler) == 0
        vfs.close(pid, handle)

    def test_deleted_pending_bytes_never_digested(self, env):
        vfs, monitor, pid = env()
        scheduler = monitor.engine.scheduler
        dc = monitor.engine.cache.digest_cache
        handle = vfs.open(pid, DOCUMENTS / "doc1.txt", "rw")
        vfs.write(pid, handle, b"y")
        vfs.close(pid, handle)
        vfs.delete(pid, DOCUMENTS / "doc1.txt")
        before = dc.bytes_digested
        assert monitor.flush_inspections() == 0 or True  # nothing orphaned
        monitor.checkpoint()
        # doc1's pending versions died with the node: nothing about them
        # was digested by the flush
        assert scheduler.stats()["pending"] == 0
        assert dc.bytes_digested == before

    def test_flush_emits_telemetry(self, env):
        vfs, monitor, pid = env()
        handle = vfs.open(pid, DOCUMENTS / "doc2.txt", "rw")
        vfs.write(pid, handle, b"z")
        drained = monitor.flush_inspections()
        vfs.close(pid, handle)
        assert drained >= 1
        kinds = [e.kind for e in monitor.telemetry.bus.events()]
        assert "digest_batch_flushed" in kinds
        metrics = monitor.telemetry_export()["metrics"]
        batches = metrics["cryptodrop_digest_batches_total"]["state"]
        assert batches and batches[0][1] >= 1.0
        assert "cryptodrop_digest_batch_size" in metrics

    def test_pending_key_threaded_to_lru(self, env):
        vfs, monitor, pid = env()
        content = vfs.peek_read(DOCUMENTS / "doc3.txt")
        handle = vfs.open(pid, DOCUMENTS / "doc3.txt", "rw")
        vfs.write(pid, handle, b"k")
        record = monitor.engine.cache.get(
            vfs.peek_stat(DOCUMENTS / "doc3.txt").node_id)
        assert record.pending_content == content
        assert record.pending_key == DigestCache.key(content)
        monitor.flush_inspections()
        assert record.pending_key is None
        found = monitor.engine.cache.digest_cache.get(
            DigestCache.key(content))
        assert found is not None and found.digested
        vfs.close(pid, handle)

    def test_restore_clears_pending(self, env):
        vfs, monitor, pid = env()
        handle = vfs.open(pid, DOCUMENTS / "doc4.txt", "rw")
        vfs.write(pid, handle, b"r")
        vfs.close(pid, handle)
        state = monitor.checkpoint()
        assert len(monitor.engine.scheduler) == 0  # checkpoint flushed
        restored = CryptoDropMonitor.from_checkpoint(
            VirtualFileSystem(), state,
            config=CryptoDropConfig(telemetry_enabled=True))
        assert len(restored.engine.scheduler) == 0

    def test_flush_mirrors_inspect_counters(self):
        # storeless, LRU off: every flushed record must count one miss
        # and digest live, exactly as scalar inspect() would
        cache = __import__("repro.core.filestate",
                           fromlist=["FileStateCache"]).FileStateCache(
            digest_cache_entries=0, defer_digests=True)
        scheduler = InspectionScheduler(cache)
        cache.scheduler = scheduler
        blobs = [_text(20), _text(21), _text(20)]
        for i, blob in enumerate(blobs):
            cache.ensure_baseline(100 + i, DOCUMENTS / f"f{i}.txt", blob)
        assert len(scheduler) == 3
        drained = scheduler.flush()
        assert drained == 3
        dc = cache.digest_cache
        assert dc.misses == 6          # 3 deferred captures + 3 flushes
        assert dc.bytes_digested == sum(len(b) for b in blobs)
        for i, blob in enumerate(blobs):
            record = cache.get(100 + i)
            assert record.base_digest.hexdigest() == \
                sdhash(blob).hexdigest()


class TestIncrementalEntropy:
    BLOBS = [b"", b"\x00", bytes(256), random.Random(0).randbytes(2048),
             _text(5), chacha20_xor(KEY, NONCE, _text(6))]

    def test_counts_variant_bit_identical(self):
        for blob in self.BLOBS:
            counts = np.bincount(np.frombuffer(blob, np.uint8),
                                 minlength=256)
            assert corrected_entropy_from_counts(counts, len(blob)) == \
                corrected_entropy(blob)

    def test_histograms_many_bit_identical(self):
        hists = histograms_many(self.BLOBS)
        for i, blob in enumerate(self.BLOBS):
            ref = np.bincount(np.frombuffer(blob, np.uint8), minlength=256)
            assert (hists[i] == ref).all()
        ents = corrected_entropies_from_histograms(
            hists, [len(b) for b in self.BLOBS])
        for i, blob in enumerate(self.BLOBS):
            assert ents[i] == corrected_entropy(blob)

    def test_update_from_counts_matches_update(self):
        for corrected in (True, False):
            a = WeightedEntropyMean(corrected=corrected)
            b = WeightedEntropyMean(corrected=corrected)
            for blob in self.BLOBS:
                counts = np.bincount(np.frombuffer(blob, np.uint8),
                                     minlength=256)
                assert a.update(blob) == b.update_from_counts(counts,
                                                              len(blob))
            assert a.state() == b.state()

    def test_stream_entropy_tracks_chunked_writes(self, env):
        vfs, monitor, pid = env()
        chunks = [_text(30, 1500), random.Random(31).randbytes(900),
                  b"tail"]
        handle = vfs.open(pid, DOCUMENTS / "doc5.txt", "rw")
        for chunk in chunks:
            vfs.write(pid, handle, chunk)
        assert monitor.engine.stream_entropy_of(handle.handle_id) == \
            corrected_entropy(b"".join(chunks))
        vfs.close(pid, handle)
        # histogram dropped with the handle
        assert monitor.engine.stream_entropy_of(handle.handle_id) is None

    def test_weighted_mean_identical_through_engine(self, env):
        # the per-op entropy deltas the engine folds must match feeding
        # the raw payloads straight into a reference mean
        vfs, monitor, pid = env()
        payloads = [chacha20_xor(KEY, NONCE, _text(i, 3000))
                    for i in range(3)]
        handle = vfs.open(pid, DOCUMENTS / "doc6.txt", "rw")
        for payload in payloads:
            vfs.write(pid, handle, payload)
        vfs.close(pid, handle)
        ref = WeightedEntropyMean(corrected=True)
        for payload in payloads:
            ref.update(payload)
        state = monitor.engine.entropy_state_of(pid)
        assert state.p_write.value == ref.value


class TestStoreBuildBatched:
    def _corpus(self, n=60):
        rng = random.Random(9)
        contents = {}
        for i in range(n):
            blob = (paragraphs(rng, rng.randrange(400, 2000)).encode()
                    if i % 3 else rng.randbytes(rng.randrange(100, 4000)))
            contents[f"/docs/f{i}"] = blob
        contents["/docs/dup"] = contents["/docs/f3"]
        return SimpleNamespace(contents=contents, seed=9)

    @staticmethod
    def _assert_stores_equal(a, b):
        assert a.fingerprint == b.fingerprint
        assert len(a) == len(b)
        assert a.total_bytes == b.total_bytes
        for key, x in a._entries.items():
            y = b._entries[key]
            assert (x.file_type, x.size, x.entropy, x.digested) == \
                (y.file_type, y.size, y.entropy, y.digested)
            assert (x.digest.hexdigest() if x.digest else None) == \
                (y.digest.hexdigest() if y.digest else None)

    def test_batched_build_identical_to_serial(self):
        corpus = self._corpus()
        self._assert_stores_equal(BaselineStore.build(corpus, batched=False),
                                  BaselineStore.build(corpus, batched=True))

    def test_batched_respects_inspect_ceiling(self):
        corpus = self._corpus()
        serial = BaselineStore.build(corpus, max_inspect_bytes=1024,
                                     batched=False)
        batched = BaselineStore.build(corpus, max_inspect_bytes=1024,
                                      batched=True)
        self._assert_stores_equal(serial, batched)
        assert any(not e.digested for e in batched._entries.values())

    def test_sharded_parallel_build_identical(self):
        from repro.sandbox.parallel import build_store_parallel
        corpus = self._corpus()
        ref = BaselineStore.build(corpus, batched=True)
        self._assert_stores_equal(ref, build_store_parallel(corpus,
                                                            workers=2))
        # single-worker fallback degrades to the in-process build
        self._assert_stores_equal(ref, build_store_parallel(corpus,
                                                            workers=1))
