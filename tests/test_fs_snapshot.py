"""Journal-based snapshot/revert and SHA-256 damage assessment."""

import pytest

from repro.fs import (BaselineIndex, DOCUMENTS, FileAttributes,
                      VirtualFileSystem, assess_damage)


@pytest.fixture
def populated():
    vfs = VirtualFileSystem()
    vfs._ensure_dirs(DOCUMENTS / "sub")
    pid = vfs.processes.spawn("setup.exe").pid
    vfs.write_file(pid, DOCUMENTS / "a.txt", b"alpha")
    vfs.write_file(pid, DOCUMENTS / "b.txt", b"beta")
    vfs.write_file(pid, DOCUMENTS / "sub" / "c.txt", b"gamma")
    vfs.snapshot_mark()
    return vfs, pid


class TestRevert:
    def test_revert_restores_overwrite(self, populated):
        vfs, pid = populated
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"ENCRYPTED")
        vfs.revert()
        assert vfs.peek_read(DOCUMENTS / "a.txt") == b"alpha"

    def test_revert_restores_delete(self, populated):
        vfs, pid = populated
        vfs.delete(pid, DOCUMENTS / "b.txt")
        vfs.revert()
        assert vfs.peek_read(DOCUMENTS / "b.txt") == b"beta"

    def test_revert_removes_created_files(self, populated):
        vfs, pid = populated
        vfs.write_file(pid, DOCUMENTS / "ransom_note.txt", b"pay up")
        vfs.revert()
        assert not vfs.exists(DOCUMENTS / "ransom_note.txt")

    def test_revert_undoes_rename(self, populated):
        vfs, pid = populated
        vfs.rename(pid, DOCUMENTS / "a.txt", DOCUMENTS / "a.locked")
        vfs.revert()
        assert vfs.exists(DOCUMENTS / "a.txt")
        assert not vfs.exists(DOCUMENTS / "a.locked")

    def test_revert_undoes_clobbering_rename(self, populated):
        vfs, pid = populated
        vfs.write_file(pid, DOCUMENTS / "new.bin", b"cipher")
        vfs.rename(pid, DOCUMENTS / "new.bin", DOCUMENTS / "a.txt")
        vfs.revert()
        assert vfs.peek_read(DOCUMENTS / "a.txt") == b"alpha"
        assert not vfs.exists(DOCUMENTS / "new.bin")

    def test_revert_undoes_attribute_change(self, populated):
        vfs, pid = populated
        vfs.set_attributes(pid, DOCUMENTS / "a.txt", read_only=True)
        vfs.revert()
        assert not vfs.peek_stat(DOCUMENTS / "a.txt").attrs.read_only

    def test_revert_undoes_mkdir(self, populated):
        vfs, pid = populated
        vfs.mkdir(pid, DOCUMENTS / "evil_dir")
        vfs.revert()
        assert not vfs.exists(DOCUMENTS / "evil_dir")

    def test_revert_handles_complex_sequence(self, populated):
        vfs, pid = populated
        # Class B dance: move out, rewrite, move back under new name
        temp = DOCUMENTS / "staging.tmp"
        vfs.rename(pid, DOCUMENTS / "a.txt", temp)
        vfs.write_file(pid, temp, b"CIPHER")
        vfs.rename(pid, temp, DOCUMENTS / "a.ctbl")
        vfs.revert()
        assert vfs.peek_read(DOCUMENTS / "a.txt") == b"alpha"
        assert not vfs.exists(DOCUMENTS / "a.ctbl")
        assert not vfs.exists(temp)

    def test_revert_twice_is_stable(self, populated):
        vfs, pid = populated
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"X")
        vfs.revert()
        vfs.revert()
        assert vfs.peek_read(DOCUMENTS / "a.txt") == b"alpha"

    def test_revert_without_mark_raises(self):
        with pytest.raises(RuntimeError):
            VirtualFileSystem().revert()

    def test_touched_since_mark_tracks_paths(self, populated):
        vfs, pid = populated
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"x")
        assert DOCUMENTS / "a.txt" in vfs.touched_since_mark


class TestDamageAssessment:
    def test_pristine_reports_all_intact(self, populated):
        vfs, pid = populated
        baseline = BaselineIndex(vfs, DOCUMENTS)
        report = assess_damage(vfs, baseline)
        assert report.files_lost == 0
        assert report.intact == 3

    def test_modification_counts_as_lost(self, populated):
        vfs, pid = populated
        baseline = BaselineIndex(vfs, DOCUMENTS)
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"CIPHER")
        report = assess_damage(vfs, baseline)
        assert report.files_lost == 1
        assert [str(p) for p in report.modified] == [str(DOCUMENTS / "a.txt")]

    def test_deletion_counts_as_lost(self, populated):
        vfs, pid = populated
        baseline = BaselineIndex(vfs, DOCUMENTS)
        vfs.delete(pid, DOCUMENTS / "b.txt")
        report = assess_damage(vfs, baseline)
        assert len(report.missing) == 1

    def test_new_files_reported_separately(self, populated):
        vfs, pid = populated
        baseline = BaselineIndex(vfs, DOCUMENTS)
        vfs.write_file(pid, DOCUMENTS / "note.txt", b"pay")
        report = assess_damage(vfs, baseline)
        assert report.files_lost == 0
        assert len(report.new_files) == 1

    def test_same_size_tamper_found_with_candidates(self, populated):
        # candidate narrowing must not skip hash checks on touched files
        vfs, pid = populated
        baseline = BaselineIndex(vfs, DOCUMENTS)
        vfs.snapshot_mark()
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"alphA")  # same length
        report = assess_damage(vfs, baseline, vfs.touched_since_mark)
        assert report.files_lost == 1

    def test_untouched_same_size_files_skip_hashing(self, populated):
        vfs, pid = populated
        baseline = BaselineIndex(vfs, DOCUMENTS)
        vfs.snapshot_mark()
        report = assess_damage(vfs, baseline, candidates=set())
        assert report.intact == 3
