"""From-scratch cryptography: standard vectors + properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (AES, PaddingError, aes_cbc_decrypt,
                          aes_cbc_encrypt, aes_ctr_xor, chacha20_block,
                          chacha20_xor, generate_keypair,
                          is_probable_prime, pad, rc4_crypt,
                          tea_decrypt_blocks, tea_encrypt_blocks, unpad,
                          unwrap_key, wrap_key, xor_crypt)


class TestAesVectors:
    """FIPS-197 Appendix C known-answer tests."""

    PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        assert AES(key).encrypt_block(self.PLAIN).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192_c2(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        assert AES(key).encrypt_block(self.PLAIN).hex() == \
            "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256_c3(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                            "101112131415161718191a1b1c1d1e1f")
        assert AES(key).encrypt_block(self.PLAIN).hex() == \
            "8ea2b7ca516745bfeafc49904b496089"

    def test_decrypt_inverts(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(self.PLAIN)) == \
            self.PLAIN

    def test_bad_key_length_rejected(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_bad_block_length_rejected(self):
        with pytest.raises(ValueError):
            AES(b"k" * 16).encrypt_block(b"tiny")


class TestAesModes:
    def test_cbc_roundtrip(self):
        msg = b"all your files are belong to us" * 20
        ct = aes_cbc_encrypt(b"k" * 16, b"i" * 16, msg)
        assert aes_cbc_decrypt(b"k" * 16, b"i" * 16, ct) == msg

    def test_cbc_iv_matters(self):
        msg = b"x" * 64
        assert aes_cbc_encrypt(b"k" * 16, b"1" * 16, msg) != \
            aes_cbc_encrypt(b"k" * 16, b"2" * 16, msg)

    def test_cbc_wrong_key_fails_padding(self):
        ct = aes_cbc_encrypt(b"k" * 16, b"i" * 16, b"secret")
        with pytest.raises(PaddingError):
            aes_cbc_decrypt(b"X" * 16, b"i" * 16, ct)

    def test_ctr_is_involution(self):
        msg = b"stream mode" * 30
        once = aes_ctr_xor(b"k" * 16, b"n" * 12, msg)
        assert aes_ctr_xor(b"k" * 16, b"n" * 12, once) == msg

    def test_ctr_handles_partial_block(self):
        msg = b"seventeen bytes!!"
        assert len(aes_ctr_xor(b"k" * 16, b"n" * 12, msg)) == len(msg)


class TestPadding:
    def test_pad_unpad_roundtrip(self):
        for n in range(0, 33):
            data = bytes(range(n % 256))[:n]
            assert unpad(pad(data)) == data

    def test_pad_always_adds(self):
        assert len(pad(b"x" * 16)) == 32

    def test_unpad_rejects_garbage(self):
        with pytest.raises(PaddingError):
            unpad(b"\x00" * 16)

    def test_unpad_rejects_unaligned(self):
        with pytest.raises(PaddingError):
            unpad(b"abc")


class TestChaCha20:
    def test_rfc8439_block_vector(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, nonce, 1)
        assert block[:16].hex() == "10f1e7e4d13b5915500fdd1fa32071c4"

    def test_rfc8439_encryption_vector(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plain = (b"Ladies and Gentlemen of the class of '99: If I could "
                 b"offer you only one tip for the future, sunscreen would "
                 b"be it.")
        cipher = chacha20_xor(key, nonce, plain, 1)
        assert cipher[:16].hex() == "6e2e359a2568f98041ba0728dd0d6981"
        assert chacha20_xor(key, nonce, cipher, 1) == plain

    def test_counter_offsets_differ(self):
        key, nonce = bytes(32), bytes(12)
        assert chacha20_xor(key, nonce, b"A" * 64, 1) != \
            chacha20_xor(key, nonce, b"A" * 64, 2)

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            chacha20_xor(b"short", bytes(12), b"x")

    @given(st.binary(max_size=5000))
    @settings(max_examples=20, deadline=None)
    def test_involution(self, data):
        key, nonce = b"K" * 32, b"N" * 12
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data


class TestLesserCiphers:
    def test_rc4_known_vector(self):
        # classic test vector: RC4("Key", "Plaintext")
        assert rc4_crypt(b"Key", b"Plaintext").hex() == "bbf316e8d940af0ad3"

    def test_rc4_involution(self):
        msg = b"stream" * 100
        assert rc4_crypt(b"k", rc4_crypt(b"k", msg)) == msg

    def test_xor_involution(self):
        msg = b"docs" * 250
        assert xor_crypt(b"key!", xor_crypt(b"key!", msg)) == msg

    def test_xor_empty_key_rejected(self):
        with pytest.raises(ValueError):
            xor_crypt(b"", b"data")

    def test_tea_roundtrip(self):
        key = b"0123456789abcdef"
        msg = b"eight by" * 64
        assert tea_decrypt_blocks(key, tea_encrypt_blocks(key, msg)) == msg

    def test_tea_pads_to_block(self):
        out = tea_encrypt_blocks(b"0123456789abcdef", b"12345")
        assert len(out) == 8

    def test_tea_repeated_blocks_repeat(self):
        """ECB structure: the property that keeps Xorist's ciphertext
        entropy below a real stream cipher's."""
        key = b"0123456789abcdef"
        out = tea_encrypt_blocks(key, b"SAMEBLK!" * 10)
        assert out[:8] == out[8:16]

    def test_tea_key_length_enforced(self):
        with pytest.raises(ValueError):
            tea_encrypt_blocks(b"short", b"x" * 8)


class TestRsa:
    def test_known_primes(self):
        for p in (2, 3, 5, 104729, (1 << 61) - 1):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for n in (1, 4, 561, 104729 * 104729, 1 << 64):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 41041):
            assert not is_probable_prime(n)

    def test_keygen_deterministic(self):
        assert generate_keypair(256, seed=7).n == \
            generate_keypair(256, seed=7).n

    def test_wrap_unwrap_roundtrip(self):
        keypair = generate_keypair(512, seed=11)
        session_key = b"S" * 24
        wrapped = wrap_key(session_key, keypair.public)
        assert unwrap_key(wrapped, keypair, 24) == session_key

    def test_wrapped_key_unreadable_without_private(self):
        keypair = generate_keypair(512, seed=12)
        wrapped = wrap_key(b"K" * 16, keypair.public)
        assert b"K" * 16 not in wrapped

    def test_encrypt_out_of_range_rejected(self):
        from repro.crypto import rsa_encrypt_int
        keypair = generate_keypair(128, seed=13)
        with pytest.raises(ValueError):
            rsa_encrypt_int(keypair.n + 1, keypair.public)


class TestCipherEngine:
    def test_every_kind_produces_output(self):
        from repro.ransomware import CipherEngine
        for kind in CipherEngine.KINDS:
            engine = CipherEngine(kind, seed=5)
            out = engine.encrypt(b"victim document content" * 40)
            assert out and out != b"victim document content" * 40

    def test_per_file_streams_differ(self):
        from repro.ransomware import CipherEngine
        engine = CipherEngine("chacha", seed=6)
        assert engine.encrypt(b"A" * 100) != engine.encrypt(b"A" * 100)

    def test_rsa_wrapped_key_blob(self):
        from repro.ransomware import CipherEngine, ATTACKER_RSA
        engine = CipherEngine("rc4", seed=7, wrap_with_rsa=True)
        blob = engine.key_blob()
        assert len(blob) == (ATTACKER_RSA.n.bit_length() + 7) // 8

    def test_unknown_kind_rejected(self):
        from repro.ransomware import CipherEngine
        with pytest.raises(ValueError):
            CipherEngine("rot13", seed=1)
