"""Virtual filesystem semantics."""

import pytest

from repro.fs import (AccessDenied, DOCUMENTS, DirectoryNotEmpty,
                      FileAttributes, FileExists, FileNotFound,
                      HandleClosed, InvalidHandle, IsADirectory,
                      NotADirectory, WinPath)


class TestCreateOpenClose:
    def test_create_and_read_back(self, vfs, pid):
        path = DOCUMENTS / "a.txt"
        vfs.write_file(pid, path, b"hello")
        assert vfs.read_file(pid, path) == b"hello"

    def test_open_missing_raises(self, vfs, pid):
        with pytest.raises(FileNotFound):
            vfs.open(pid, DOCUMENTS / "nope.txt", "r")

    def test_open_create_makes_empty_file(self, vfs, pid):
        handle = vfs.open(pid, DOCUMENTS / "new.bin", "w", create=True)
        vfs.close(pid, handle)
        assert vfs.read_file(pid, DOCUMENTS / "new.bin") == b""

    def test_create_in_missing_dir_raises(self, vfs, pid):
        with pytest.raises(FileNotFound):
            vfs.open(pid, DOCUMENTS / "no_dir" / "f.txt", "w", create=True)

    def test_open_directory_raises(self, vfs, pid):
        with pytest.raises(IsADirectory):
            vfs.open(pid, DOCUMENTS, "r")

    def test_double_close_raises(self, vfs, pid):
        handle = vfs.open(pid, DOCUMENTS / "f", "w", create=True)
        vfs.close(pid, handle)
        with pytest.raises(HandleClosed):
            vfs.close(pid, handle)

    def test_foreign_handle_rejected(self, vfs, pid):
        other = vfs.processes.spawn("other.exe").pid
        handle = vfs.open(pid, DOCUMENTS / "f", "w", create=True)
        with pytest.raises(InvalidHandle):
            vfs.write(other, handle, b"x")

    def test_case_insensitive_lookup(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "Report.TXT", b"x")
        assert vfs.read_file(pid, DOCUMENTS / "report.txt") == b"x"

    def test_bad_mode_rejected(self, vfs, pid):
        with pytest.raises(ValueError):
            vfs.open(pid, DOCUMENTS / "f", "z", create=True)


class TestReadWrite:
    def test_positional_reads(self, vfs, pid):
        path = DOCUMENTS / "data.bin"
        vfs.write_file(pid, path, bytes(range(100)))
        handle = vfs.open(pid, path, "r")
        assert vfs.read(pid, handle, 10) == bytes(range(10))
        assert vfs.read(pid, handle, 10) == bytes(range(10, 20))
        vfs.seek(pid, handle, 90)
        assert vfs.read(pid, handle) == bytes(range(90, 100))
        vfs.close(pid, handle)

    def test_read_past_eof_returns_empty(self, vfs, pid):
        path = DOCUMENTS / "tiny"
        vfs.write_file(pid, path, b"ab")
        handle = vfs.open(pid, path, "r")
        vfs.seek(pid, handle, 5)
        assert vfs.read(pid, handle, 4) == b""
        vfs.close(pid, handle)

    def test_overwrite_in_place(self, vfs, pid):
        path = DOCUMENTS / "f"
        vfs.write_file(pid, path, b"AAAABBBB")
        handle = vfs.open(pid, path, "rw")
        vfs.seek(pid, handle, 4)
        vfs.write(pid, handle, b"CC")
        vfs.close(pid, handle)
        assert vfs.read_file(pid, path) == b"AAAACCBB"

    def test_sparse_write_zero_fills(self, vfs, pid):
        path = DOCUMENTS / "sparse"
        handle = vfs.open(pid, path, "w", create=True)
        vfs.seek(pid, handle, 4)
        vfs.write(pid, handle, b"XY")
        vfs.close(pid, handle)
        assert vfs.read_file(pid, path) == b"\x00\x00\x00\x00XY"

    def test_append_mode(self, vfs, pid):
        path = DOCUMENTS / "log.txt"
        vfs.write_file(pid, path, b"one\n")
        handle = vfs.open(pid, path, "a")
        vfs.write(pid, handle, b"two\n")
        vfs.close(pid, handle)
        assert vfs.read_file(pid, path) == b"one\ntwo\n"

    def test_write_on_readonly_handle_raises(self, vfs, pid):
        path = DOCUMENTS / "f"
        vfs.write_file(pid, path, b"x")
        handle = vfs.open(pid, path, "r")
        with pytest.raises(AccessDenied):
            vfs.write(pid, handle, b"y")
        vfs.close(pid, handle)

    def test_truncate_via_open(self, vfs, pid):
        path = DOCUMENTS / "f"
        vfs.write_file(pid, path, b"longcontent")
        handle = vfs.open(pid, path, "w", truncate=True)
        vfs.close(pid, handle)
        assert vfs.read_file(pid, path) == b""

    def test_truncate_handle(self, vfs, pid):
        path = DOCUMENTS / "f"
        vfs.write_file(pid, path, b"0123456789")
        handle = vfs.open(pid, path, "rw")
        vfs.truncate_handle(pid, handle, 4)
        vfs.close(pid, handle)
        assert vfs.read_file(pid, path) == b"0123"

    def test_chunked_roundtrip(self, vfs, pid):
        payload = bytes(range(256)) * 40
        path = DOCUMENTS / "big.bin"
        vfs.write_file(pid, path, payload, chunk_size=1000)
        assert vfs.read_file(pid, path, chunk_size=777) == payload


class TestReadOnlyAttribute:
    def test_write_open_denied(self, vfs, pid):
        path = DOCUMENTS / "locked.txt"
        vfs.write_file(pid, path, b"keep me")
        vfs.set_attributes(pid, path, read_only=True)
        with pytest.raises(AccessDenied):
            vfs.open(pid, path, "rw")

    def test_delete_denied(self, vfs, pid):
        path = DOCUMENTS / "locked.txt"
        vfs.write_file(pid, path, b"keep me")
        vfs.set_attributes(pid, path, read_only=True)
        with pytest.raises(AccessDenied):
            vfs.delete(pid, path)

    def test_read_still_allowed(self, vfs, pid):
        path = DOCUMENTS / "locked.txt"
        vfs.write_file(pid, path, b"keep me")
        vfs.set_attributes(pid, path, read_only=True)
        assert vfs.read_file(pid, path) == b"keep me"

    def test_rename_of_readonly_allowed(self, vfs, pid):
        # Windows permits renaming read-only files
        path = DOCUMENTS / "locked.txt"
        vfs.write_file(pid, path, b"x")
        vfs.set_attributes(pid, path, read_only=True)
        vfs.rename(pid, path, DOCUMENTS / "moved.txt")
        assert vfs.exists(DOCUMENTS / "moved.txt")

    def test_clobbering_readonly_denied(self, vfs, pid):
        target = DOCUMENTS / "locked.txt"
        vfs.write_file(pid, target, b"x")
        vfs.set_attributes(pid, target, read_only=True)
        vfs.write_file(pid, DOCUMENTS / "src.txt", b"y")
        with pytest.raises(AccessDenied):
            vfs.rename(pid, DOCUMENTS / "src.txt", target)


class TestRename:
    def test_simple_rename(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "a", b"1")
        vfs.rename(pid, DOCUMENTS / "a", DOCUMENTS / "b")
        assert not vfs.exists(DOCUMENTS / "a")
        assert vfs.read_file(pid, DOCUMENTS / "b") == b"1"

    def test_rename_preserves_node_id(self, vfs, pid):
        path = DOCUMENTS / "a"
        vfs.write_file(pid, path, b"1")
        node_id = vfs.peek_stat(path).node_id
        vfs.rename(pid, path, DOCUMENTS / "b")
        assert vfs.peek_stat(DOCUMENTS / "b").node_id == node_id

    def test_rename_clobbers_existing(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "a", b"new")
        vfs.write_file(pid, DOCUMENTS / "b", b"old")
        vfs.rename(pid, DOCUMENTS / "a", DOCUMENTS / "b")
        assert vfs.read_file(pid, DOCUMENTS / "b") == b"new"

    def test_rename_no_overwrite_flag(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "a", b"1")
        vfs.write_file(pid, DOCUMENTS / "b", b"2")
        with pytest.raises(FileExists):
            vfs.rename(pid, DOCUMENTS / "a", DOCUMENTS / "b",
                       overwrite=False)

    def test_rename_across_directories(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "sub")
        vfs.write_file(pid, DOCUMENTS / "a", b"1")
        vfs.rename(pid, DOCUMENTS / "a", DOCUMENTS / "sub" / "a")
        assert vfs.read_file(pid, DOCUMENTS / "sub" / "a") == b"1"

    def test_rename_updates_open_handle_path(self, vfs, pid):
        path = DOCUMENTS / "a"
        vfs.write_file(pid, path, b"1")
        handle = vfs.open(pid, path, "r")
        vfs.rename(pid, path, DOCUMENTS / "b")
        assert handle.path == DOCUMENTS / "b"
        vfs.close(pid, handle)

    def test_rename_missing_raises(self, vfs, pid):
        with pytest.raises(FileNotFound):
            vfs.rename(pid, DOCUMENTS / "ghost", DOCUMENTS / "x")

    def test_rename_directory(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "old")
        vfs.write_file(pid, DOCUMENTS / "old" / "f", b"1")
        vfs.rename(pid, DOCUMENTS / "old", DOCUMENTS / "new")
        assert vfs.read_file(pid, DOCUMENTS / "new" / "f") == b"1"


class TestDeleteAndDirs:
    def test_delete_file(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "a", b"1")
        vfs.delete(pid, DOCUMENTS / "a")
        assert not vfs.exists(DOCUMENTS / "a")

    def test_delete_missing_raises(self, vfs, pid):
        with pytest.raises(FileNotFound):
            vfs.delete(pid, DOCUMENTS / "ghost")

    def test_delete_nonempty_dir_raises(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "d")
        vfs.write_file(pid, DOCUMENTS / "d" / "f", b"1")
        with pytest.raises(DirectoryNotEmpty):
            vfs.delete(pid, DOCUMENTS / "d")

    def test_delete_empty_dir(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "d")
        vfs.delete(pid, DOCUMENTS / "d")
        assert not vfs.exists(DOCUMENTS / "d")

    def test_mkdir_parents(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "a" / "b" / "c", parents=True)
        assert vfs.is_dir(DOCUMENTS / "a" / "b" / "c")

    def test_mkdir_existing_raises(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "d")
        with pytest.raises(FileExists):
            vfs.mkdir(pid, DOCUMENTS / "d")

    def test_mkdir_exist_ok(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "d")
        vfs.mkdir(pid, DOCUMENTS / "d", exist_ok=True)

    def test_listdir_sorted_and_case_preserving(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "Beta.txt", b"")
        vfs.write_file(pid, DOCUMENTS / "alpha.txt", b"")
        assert vfs.listdir(pid, DOCUMENTS) == ["alpha.txt", "Beta.txt"]

    def test_listdir_on_file_raises(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "f", b"")
        with pytest.raises(NotADirectory):
            vfs.listdir(pid, DOCUMENTS / "f")

    def test_walk_visits_everything(self, vfs, pid):
        vfs.mkdir(pid, DOCUMENTS / "x" / "y", parents=True)
        vfs.write_file(pid, DOCUMENTS / "x" / "f1", b"")
        vfs.write_file(pid, DOCUMENTS / "x" / "y" / "f2", b"")
        seen_files = []
        for dirpath, _dirs, files in vfs.walk(pid, DOCUMENTS):
            seen_files.extend(str(dirpath / f) for f in files)
        assert any(p.endswith("f1") for p in seen_files)
        assert any(p.endswith("f2") for p in seen_files)

    def test_stat_reports_size_and_kind(self, vfs, pid):
        vfs.write_file(pid, DOCUMENTS / "f", b"12345")
        st = vfs.stat(pid, DOCUMENTS / "f")
        assert st.size == 5 and not st.is_dir
        assert vfs.stat(pid, DOCUMENTS).is_dir


class TestClockAdvances:
    def test_operations_advance_time(self, vfs, pid):
        before = vfs.clock.now_us
        vfs.write_file(pid, DOCUMENTS / "f", b"data")
        assert vfs.clock.now_us > before

    def test_modified_timestamp_updates(self, vfs, pid):
        path = DOCUMENTS / "f"
        vfs.write_file(pid, path, b"1")
        first = vfs.peek_stat(path).modified_us
        vfs.write_file(pid, path, b"2")
        assert vfs.peek_stat(path).modified_us > first
