"""Chaos suite: campaigns under injected faults, crashes, and resume.

Three failure domains, per the robustness design (docs/robustness.md):

* **environmental faults** — a seeded :class:`FaultPlan` must leave a
  campaign with zero aborted samples and verdicts that are bit-stable
  across identical runs;
* **monitor death** — a killed-and-restarted CryptoDrop must resume from
  its checkpoint and reach the same verdict as an uninterrupted run;
* **harness death** — a worker killed mid-sweep is requeued, and an
  interrupted (journalled) campaign resumes by rerunning only the
  missing samples.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import CryptoDropMonitor
from repro.faults import (FaultInjector, MonitorSupervisor, monitor_crash,
                          transient_faults)
from repro.ransomware import instantiate, working_cohort
from repro.sandbox import (CampaignJournal, run_campaign,
                           run_campaign_parallel, run_sample)
from repro.sandbox.journal import result_from_dict, result_to_dict

pytestmark = pytest.mark.chaos


def verdict(result):
    """The fields a chaos run must keep bit-stable."""
    return (result.sample_name, result.detected, result.suspended,
            result.files_lost, result.score, result.threshold,
            result.union_fired, sorted(result.flags), result.error,
            result.completed)


def cohort_subset(*families, per_family=2):
    picked = []
    for family in families:
        picked.extend([s for s in working_cohort()
                       if s.profile.family == family][:per_family])
    return picked


def fresh_subset(subset):
    """Samples are stateful (files_attacked, notes); re-instantiate."""
    return [instantiate(s.profile) for s in subset]


class TestFaultedCampaignDeterminism:
    def test_no_plan_matches_plain_campaign_exactly(self, machine,
                                                    small_corpus):
        subset = cohort_subset("xorist", "teslacrypt")
        plain = run_campaign(fresh_subset(subset), small_corpus)
        injector = FaultInjector(None)
        machine.vfs.filters.attach(injector)
        try:
            shadowed = [run_sample(machine, s) for s in fresh_subset(subset)]
        finally:
            machine.vfs.filters.detach(injector)
        assert injector.stats()["ops_seen"] == 0
        for fresh, shadow in zip(plain.results, shadowed):
            left, right = result_to_dict(fresh), result_to_dict(shadow)
            # the session machine's sim clock has a different float
            # origin than a fresh machine's, so elapsed time carries
            # ~1e-15 accumulation noise; everything else is exact
            assert left.pop("sim_seconds") == \
                pytest.approx(right.pop("sim_seconds"))
            assert left == right

    def test_seeded_faults_zero_aborts_and_stable_verdicts(self, machine):
        subset = cohort_subset("xorist", "teslacrypt", "ctb-locker")
        plan = transient_faults(seed=99, deny_rate=0.05,
                                short_read_rate=0.05,
                                latency_spike_rate=0.02)
        sweeps = []
        for _ in range(2):
            injector = FaultInjector(plan)
            machine.vfs.filters.attach(injector)
            try:
                results = [run_sample(machine, s)
                           for s in fresh_subset(subset)]
            finally:
                machine.vfs.filters.detach(injector)
            assert injector.stats()["ops_seen"] > 0
            sweeps.append([verdict(r) for r in results])
        first, second = sweeps
        assert first == second
        # zero aborted samples: every run produced a real verdict
        assert all(v[8] is None for v in first)  # error field
        assert all(v[1] for v in first)          # still all detected


class TestMonitorCrashResilience:
    def _run_with_kills(self, machine, sample, *at_ops):
        supervisor = MonitorSupervisor(machine.vfs)
        supervisor.start()
        injector = FaultInjector(
            monitor_crash(*at_ops),
            on_monitor_kill=supervisor.crash_and_restart)
        machine.vfs.filters.attach(injector)
        try:
            outcome = machine.run_program(sample)
            row = supervisor.monitor.engine.row_of(outcome.pid)
            detections = list(supervisor.detections)
            return outcome, row, detections, supervisor
        finally:
            machine.vfs.filters.detach(injector)
            supervisor.stop()
            machine.revert()

    def _run_uninterrupted(self, machine, sample):
        monitor = CryptoDropMonitor(machine.vfs).attach()
        try:
            outcome = machine.run_program(sample)
            row = monitor.engine.row_of(outcome.pid)
            return outcome, row, list(monitor.detections)
        finally:
            monitor.detach()
            machine.revert()

    def test_single_kill_reaches_same_verdict(self, machine):
        profile = cohort_subset("teslacrypt", per_family=1)[0].profile
        base_out, base_row, base_det = self._run_uninterrupted(
            machine, instantiate(profile))
        out, row, detections, supervisor = self._run_with_kills(
            machine, instantiate(profile), 200)
        assert supervisor.crashes == 1 and supervisor.restarts == 1
        assert bool(detections) == bool(base_det) == True  # noqa: E712
        assert (row.score, row.threshold, sorted(row.flags),
                row.union_fired) == \
            (base_row.score, base_row.threshold, sorted(base_row.flags),
             base_row.union_fired)
        assert out.suspended == base_out.suspended

    def test_repeated_kills_degrade_gracefully(self, machine):
        profile = cohort_subset("xorist", per_family=1)[0].profile
        _base_out, base_row, base_det = self._run_uninterrupted(
            machine, instantiate(profile))
        _out, row, detections, supervisor = self._run_with_kills(
            machine, instantiate(profile), 50, 150, 300)
        assert supervisor.crashes == 3 and supervisor.restarts == 3
        assert bool(detections) == bool(base_det) == True  # noqa: E712
        assert (row.score, sorted(row.flags)) == \
            (base_row.score, sorted(base_row.flags))

    def test_checkpoint_survives_json_round_trip(self, machine):
        profile = cohort_subset("xorist", per_family=1)[0].profile
        monitor = CryptoDropMonitor(machine.vfs).attach()
        try:
            machine.run_program(instantiate(profile))
            state = monitor.checkpoint()
            wire = json.loads(json.dumps(state, sort_keys=True))
            restored = CryptoDropMonitor.from_checkpoint(machine.vfs, wire)
            assert restored.checkpoint() == state
            assert restored.engine.scoreboard.rows()
            assert len(restored.engine.cache) == len(monitor.engine.cache)
            assert [d.process_name for d in restored.detections] == \
                [d.process_name for d in monitor.detections]
        finally:
            monitor.detach()
            machine.revert()


class TestCampaignJournal:
    def test_result_round_trip_is_exact(self, machine):
        sample = cohort_subset("teslacrypt", per_family=1)[0]
        result = run_sample(machine, sample, record_ops=True)
        clone = result_from_dict(
            json.loads(json.dumps(result_to_dict(result))))
        assert result_to_dict(clone) == result_to_dict(result)
        assert clone.touched_dirs == result.touched_dirs

    def test_serial_resume_reruns_only_missing(self, small_corpus, tmp_path,
                                               monkeypatch):
        subset = cohort_subset("xorist", "cryptodefense")
        journal = CampaignJournal(tmp_path / "campaign.jsonl")
        first = run_campaign(fresh_subset(subset)[:2], small_corpus,
                             journal=journal)
        assert len(journal.load()) == 2

        executed = []
        import repro.sandbox.campaign as campaign_mod
        real_run_sample = campaign_mod.run_sample

        def counting_run_sample(machine, sample, *args, **kwargs):
            executed.append(sample.profile.sample_name)
            return real_run_sample(machine, sample, *args, **kwargs)

        monkeypatch.setattr(campaign_mod, "run_sample", counting_run_sample)
        resumed = run_campaign(fresh_subset(subset), small_corpus,
                               journal=journal)
        assert executed == [s.profile.sample_name for s in subset[2:]]
        assert len(resumed.results) == len(subset)
        assert [r.sample_name for r in resumed.results] == \
            [s.profile.sample_name for s in subset]
        # the spliced-in journalled results are the first run's, verbatim
        assert [verdict(r) for r in resumed.results[:2]] == \
            [verdict(r) for r in first.results]

    def test_torn_final_line_is_skipped(self, small_corpus, tmp_path):
        subset = cohort_subset("xorist", per_family=2)
        journal = CampaignJournal(tmp_path / "torn.jsonl")
        run_campaign(fresh_subset(subset), small_corpus, journal=journal)
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"sample_name": "half-writ')  # crash mid-append
        assert len(journal.load()) == 2

    def test_clear_removes_the_file(self, tmp_path):
        journal = CampaignJournal(tmp_path / "gone.jsonl")
        assert journal.load() == {}
        journal.clear()  # no file: no-op
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write("x\n")
        journal.clear()
        assert not os.path.exists(journal.path)


# ---------------------------------------------------------------------------
# parallel dispatch under failure
# ---------------------------------------------------------------------------

# Module globals consumed by _killer_run_one in forked workers (set by the
# worker-kill test before the pool forks; pickling resolves the function
# by name, fork inheritance carries the globals).
_KILL_TARGET = None
_KILL_FUSE = None


def _killer_run_one(args):
    profile, _config, _record_ops = args
    if profile.sample_name == _KILL_TARGET and not os.path.exists(_KILL_FUSE):
        open(_KILL_FUSE, "w").close()
        os._exit(1)  # simulate a hard worker crash (no exception, no result)
    import repro.sandbox.parallel as parallel_mod
    sample = instantiate(profile)
    return run_sample(parallel_mod._WORKER_MACHINE, sample, _config,
                      _record_ops)


class TestParallelResilience:
    def test_worker_killed_mid_sweep_completes_all_samples(
            self, small_corpus, tmp_path, monkeypatch):
        global _KILL_TARGET, _KILL_FUSE
        subset = cohort_subset("xorist", per_family=4)
        import repro.sandbox.parallel as parallel_mod
        _KILL_TARGET = subset[0].profile.sample_name
        _KILL_FUSE = str(tmp_path / "worker-killed")
        monkeypatch.setattr(parallel_mod, "_run_one", _killer_run_one)
        try:
            campaign = run_campaign_parallel(
                subset, small_corpus, workers=2, sample_timeout=10.0,
                max_retries=2)
        finally:
            _KILL_TARGET = _KILL_FUSE = None
        assert os.path.exists(str(tmp_path / "worker-killed"))
        assert len(campaign.results) == len(subset)
        assert all(r.error is None for r in campaign.results)
        assert campaign.detection_rate == 1.0

    def test_timeout_exhaustion_yields_errored_results(self, small_corpus):
        subset = cohort_subset("xorist", per_family=2)
        campaign = run_campaign_parallel(
            subset, small_corpus, workers=2, sample_timeout=0.01,
            max_retries=0)
        assert len(campaign.results) == len(subset)
        assert all(r.error and "TimeoutError" in r.error
                   for r in campaign.results)
        assert all(not r.completed for r in campaign.results)

    def test_worker_exception_becomes_errored_result(self, small_corpus,
                                                     monkeypatch):
        import repro.sandbox.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod, "_run_one", _raising_run_one)
        subset = cohort_subset("xorist", per_family=2)
        campaign = run_campaign_parallel(subset, small_corpus, workers=2)
        assert all(r.error == "RuntimeError: worker bug"
                   for r in campaign.results)

    def test_parallel_journal_resume_skips_completed(self, small_corpus,
                                                     tmp_path, monkeypatch):
        subset = cohort_subset("xorist", per_family=3)
        journal = CampaignJournal(tmp_path / "par.jsonl")
        first = run_campaign_parallel(subset, small_corpus, workers=2,
                                      journal=journal)
        assert len(journal.load()) == len(subset)
        lines_before = sum(1 for _ in open(journal.path))

        import repro.sandbox.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod, "_run_one", _raising_run_one)
        resumed = run_campaign_parallel(subset, small_corpus, workers=2,
                                        journal=journal)
        # nothing reran (the poisoned _run_one was never reached) and the
        # journal did not grow
        assert [verdict(r) for r in resumed.results] == \
            [verdict(r) for r in first.results]
        assert sum(1 for _ in open(journal.path)) == lines_before

    def test_concurrent_campaign_guard(self, small_corpus, monkeypatch):
        import repro.sandbox.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod, "_PARENT_CORPUS", object())
        subset = cohort_subset("xorist", per_family=1)
        with pytest.raises(RuntimeError, match="fork"):
            run_campaign_parallel(subset, small_corpus, workers=2)


def _raising_run_one(args):
    raise RuntimeError("worker bug")
