"""Reputation scoreboard and union indication."""

import pytest

from repro.core import CryptoDropConfig, IndicatorHit, Scoreboard
from repro.core.indicators import PRIMARY


@pytest.fixture
def board():
    return Scoreboard(CryptoDropConfig())


def _hit(indicator, points, flag=None):
    return IndicatorHit(indicator, points, primary_flag=flag)


class TestBasicScoring:
    def test_points_accumulate(self, board):
        board.apply(1, _hit("deletion", 2.0), 0.0)
        board.apply(1, _hit("deletion", 2.0), 1.0)
        assert board.row(1).score == 4.0

    def test_rows_are_per_process(self, board):
        board.apply(1, _hit("deletion", 2.0), 0.0)
        assert board.row(2).score == 0.0

    def test_history_journalled(self, board):
        board.apply(1, _hit("entropy", 2.5, "entropy"), 5.0, path="C:\\x")
        event = board.row(1).history[0]
        assert event.indicator == "entropy"
        assert event.score_after == 2.5
        assert event.path == "C:\\x"

    def test_default_threshold_is_paper_value(self, board):
        assert board.row(1).threshold == 200.0

    def test_name_recorded_once(self, board):
        board.row(1, "evil.exe")
        board.row(1, "")
        assert board.row(1).name == "evil.exe"


class TestUnionIndication:
    def test_all_three_flags_fire_union(self, board):
        config = board.config
        for flag in PRIMARY:
            board.apply(1, _hit(flag, 5.0, flag), 0.0)
        row = board.row(1)
        assert row.union_fired
        assert row.threshold == config.union_threshold
        assert row.score == 15.0 + config.union_bonus

    def test_two_flags_insufficient(self, board):
        board.apply(1, _hit("entropy", 5.0, "entropy"), 0.0)
        board.apply(1, _hit("similarity", 5.0, "similarity"), 0.0)
        assert not board.row(1).union_fired

    def test_union_fires_once(self, board):
        for flag in PRIMARY:
            board.apply(1, _hit(flag, 5.0, flag), 0.0)
        score_after_union = board.row(1).score
        board.apply(1, _hit("entropy", 5.0, "entropy"), 1.0)
        assert board.row(1).score == score_after_union + 5.0  # no 2nd bonus

    def test_secondary_indicators_never_union(self, board):
        for _ in range(50):
            board.apply(1, _hit("deletion", 2.0), 0.0)
            board.apply(1, _hit("funneling", 3.0), 0.0)
        assert not board.row(1).union_fired

    def test_union_disabled_config(self):
        board = Scoreboard(CryptoDropConfig(enable_union=False))
        for flag in PRIMARY:
            board.apply(1, _hit(flag, 5.0, flag), 0.0)
        row = board.row(1)
        assert not row.union_fired
        assert row.threshold == 200.0

    def test_flag_only_observation_counts_toward_union(self, board):
        board.apply(1, _hit("type_change", 5.0, "type_change"), 0.0)
        board.apply(1, _hit("similarity", 6.0, "similarity"), 0.0)
        board.set_flag(1, "entropy", 1.0)
        assert board.row(1).union_fired

    def test_union_event_in_history(self, board):
        for flag in PRIMARY:
            board.apply(1, _hit(flag, 5.0, flag), 0.0)
        indicators = [e.indicator for e in board.row(1).history]
        assert "union" in indicators

    def test_union_count(self, board):
        for flag in PRIMARY:
            board.apply(1, _hit(flag, 5.0, flag), 0.0)
        board.apply(2, _hit("entropy", 5.0, "entropy"), 0.0)
        assert board.union_count() == 1


class TestThresholdReplay:
    def test_first_crossing_basic(self, board):
        for i in range(10):
            board.apply(1, _hit("deletion", 30.0), float(i))
        row = board.row(1)
        assert row.first_crossing(100.0) == 3.0    # 4th event hits 120
        assert row.first_crossing(500.0) is None

    def test_replay_without_union_bonus(self, board):
        for i, flag in enumerate(PRIMARY):
            board.apply(1, _hit(flag, 10.0, flag), float(i))
        row = board.row(1)
        # with union: 30 + bonus 40 = 70 crosses 60 at the union event
        assert row.first_crossing(60.0, with_union=True) is not None
        # without the bonus the run never reaches 60
        assert row.first_crossing(60.0, with_union=False) is None

    def test_union_threshold_reduction_in_replay(self, board):
        for i, flag in enumerate(PRIMARY):
            board.apply(1, _hit(flag, 10.0, flag), float(i))
        row = board.row(1)
        # nominal threshold 1000 never crossed, but union drops it to 65
        assert row.first_crossing(1000.0, union_threshold=65.0) is not None
