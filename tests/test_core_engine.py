"""The analysis engine, end to end against hand-rolled workloads."""

import random

import pytest

from repro.core import (AllowPolicy, CryptoDropConfig, CryptoDropMonitor)
from repro.corpus.content import make_docx, make_pdf
from repro.corpus.wordlists import paragraphs
from repro.crypto import chacha20_xor
from repro.fs import (DOCUMENTS, ProcessSuspended, TEMP, VirtualFileSystem)

KEY, NONCE = bytes(32), bytes(12)


def _text(seed, n=9000):
    return paragraphs(random.Random(seed), n).encode()


@pytest.fixture
def env():
    """A filesystem with a dozen protected documents and a monitor."""
    vfs = VirtualFileSystem()
    vfs._ensure_dirs(DOCUMENTS / "work")
    vfs._ensure_dirs(TEMP)
    rng = random.Random(99)
    for i in range(16):
        vfs.peek_write(DOCUMENTS / f"notes{i}.txt", _text(i))
    for i in range(4):
        vfs.peek_write(DOCUMENTS / "work" / f"plan{i}.pdf",
                       make_pdf(rng, 9000))
    monitor = CryptoDropMonitor(vfs).attach()
    pid = vfs.processes.spawn("workload.exe").pid
    return vfs, monitor, pid


def _encrypt_in_place(vfs, pid, path):
    handle = vfs.open(pid, path, "rw")
    data = vfs.read(pid, handle)
    vfs.seek(pid, handle, 0)
    vfs.write(pid, handle, chacha20_xor(KEY, NONCE, data))
    vfs.close(pid, handle)


class TestClassADetection:
    def test_bulk_encryption_suspends(self, env):
        vfs, monitor, pid = env
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                _encrypt_in_place(vfs, pid, DOCUMENTS / f"notes{i}.txt")
        assert monitor.detected
        detection = monitor.detections[0]
        assert detection.suspended
        assert detection.score >= detection.threshold

    def test_union_fires_on_class_a(self, env):
        vfs, monitor, pid = env
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                _encrypt_in_place(vfs, pid, DOCUMENTS / f"notes{i}.txt")
        row = monitor.engine.row_of(pid)
        assert row.union_fired
        assert row.flags == {"entropy", "type_change", "similarity"}

    def test_single_file_edit_is_silent(self, env):
        vfs, monitor, pid = env
        path = DOCUMENTS / "notes0.txt"
        data = vfs.read_file(pid, path)
        vfs.write_file(pid, path, data + b"\nPS: appended a line")
        assert not monitor.detected
        assert monitor.score_of(pid) == 0.0


class TestClassBTracking:
    def test_temp_staging_does_not_evade(self, env):
        """Files moved out of Documents stay tracked by node id."""
        vfs, monitor, pid = env
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                src = DOCUMENTS / f"notes{i}.txt"
                stage = TEMP / f"s{i}.tmp"
                vfs.rename(pid, src, stage)
                _encrypt_in_place(vfs, pid, stage)
                vfs.rename(pid, stage, DOCUMENTS / f"{i:08x}.ctbl")
        assert monitor.detected
        assert monitor.engine.row_of(pid).union_fired


class TestClassCTracking:
    def test_move_over_links_and_detects(self, env):
        vfs, monitor, pid = env
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                victim = DOCUMENTS / f"notes{i}.txt"
                data = vfs.read_file(pid, victim)
                out = DOCUMENTS / f"notes{i}.txt.enc"
                vfs.write_file(pid, out, chacha20_xor(KEY, NONCE, data))
                vfs.rename(pid, out, victim)
        assert monitor.engine.row_of(pid).union_fired

    def test_delete_disposal_caught_without_union(self, env):
        """§V-B2's 22 evaders: no union, but entropy + deletion convict."""
        vfs, monitor, pid = env
        config = monitor.config
        try:
            # CryptoDefense-style small-chunk writer
            for i in range(16):
                victim = DOCUMENTS / f"notes{i}.txt"
                data = vfs.read_file(pid, victim, chunk_size=2048)
                vfs.write_file(pid, DOCUMENTS / f"notes{i}.enc",
                               chacha20_xor(KEY, NONCE, data),
                               chunk_size=1024)
                vfs.delete(pid, victim)
        except ProcessSuspended:
            pass
        assert monitor.detected
        assert not monitor.engine.row_of(pid).union_fired


class TestScopeAndPolicy:
    def test_unprotected_io_ignored(self, env):
        vfs, monitor, pid = env
        rng = random.Random(5)
        for i in range(30):
            vfs.write_file(pid, TEMP / f"cache{i}.bin", rng.randbytes(20000))
        assert monitor.score_of(pid) == 0.0
        assert not monitor.detected

    def test_allow_policy_whitelists(self, env):
        vfs, monitor, pid = env
        monitor.engine.policy = AllowPolicy()
        # run the full attack: detections recorded, nothing suspended
        for i in range(16):
            _encrypt_in_place(vfs, pid, DOCUMENTS / f"notes{i}.txt")
        assert monitor.detected
        assert not monitor.detections[0].suspended
        assert len(monitor.detections) == 1     # asked once, then whitelisted

    def test_detection_carries_context(self, env):
        vfs, monitor, pid = env
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                _encrypt_in_place(vfs, pid, DOCUMENTS / f"notes{i}.txt")
        det = monitor.detections[0]
        assert det.process_name == "workload.exe"
        assert det.trigger_path.startswith("C:\\Users")
        assert det.history_len > 0

    def test_family_scoring_covers_children(self, env):
        vfs, monitor, pid = env
        child = vfs.processes.spawn("drone.exe", parent_pid=pid).pid
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                _encrypt_in_place(vfs, child, DOCUMENTS / f"notes{i}.txt")
        # the parent is suspended along with the child
        with pytest.raises(ProcessSuspended):
            vfs.read_file(pid, DOCUMENTS / "work" / "plan0.pdf")

    def test_detach_stops_monitoring(self, env):
        vfs, monitor, pid = env
        monitor.detach()
        for i in range(16):
            _encrypt_in_place(vfs, pid, DOCUMENTS / f"notes{i}.txt")
        assert not monitor.detected

    def test_context_manager(self):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        with CryptoDropMonitor(vfs) as monitor:
            assert monitor.attached
        assert not monitor.attached


class TestEngineInternals:
    def test_lazy_baseline_skips_readonly_opens(self, env):
        vfs, monitor, pid = env
        for i in range(16):
            vfs.read_file(pid, DOCUMENTS / f"notes{i}.txt")
        assert len(monitor.engine.cache) == 0

    def test_baseline_captured_before_truncate(self, env):
        vfs, monitor, pid = env
        path = DOCUMENTS / "notes0.txt"
        handle = vfs.open(pid, path, "w", truncate=True)
        vfs.close(pid, handle)
        record = monitor.engine.cache.get(vfs.peek_stat(path).node_id)
        assert record is not None
        assert record.base_type.name == "txt"   # pre-truncation content

    def test_stats_reporting(self, env):
        vfs, monitor, pid = env
        vfs.write_file(pid, DOCUMENTS / "notes0.txt", b"new" * 400)
        stats = monitor.stats()
        assert stats["ops_seen"]["write"] >= 1
        assert stats["tracked_files"] >= 1

    def test_shadow_copy_deletion_invisible(self, env):
        """§III: VSS tampering does not touch user data — no score."""
        from repro.fs import ShadowCopyService
        vfs, monitor, pid = env
        service = ShadowCopyService(vfs)
        service.create(pid, DOCUMENTS)
        service.delete_all(pid)
        assert monitor.score_of(pid) == 0.0

    def test_scores_per_family_config_off(self):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        vfs.peek_write(DOCUMENTS / "f.txt", _text(1))
        config = CryptoDropConfig(score_process_families=False)
        monitor = CryptoDropMonitor(vfs, config).attach()
        parent = vfs.processes.spawn("a.exe").pid
        child = vfs.processes.spawn("b.exe", parent_pid=parent).pid
        vfs.write_file(child, DOCUMENTS / "f.txt",
                       random.Random(0).randbytes(9000))
        rows = {r.root_pid for r in monitor.score_rows() if r.score > 0}
        assert rows == {child}


class TestForensicExport:
    def test_export_report_is_json_serialisable(self, env):
        import json
        vfs, monitor, pid = env
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                _encrypt_in_place(vfs, pid, DOCUMENTS / f"notes{i}.txt")
        report = monitor.export_report()
        encoded = json.dumps(report)
        decoded = json.loads(encoded)
        assert decoded["detections"][0]["process"] == "workload.exe"
        assert decoded["detections"][0]["suspended"] is True
        assert decoded["processes"][0]["events"]
        assert decoded["config"]["non_union_threshold"] == 200.0

    def test_clean_session_report(self):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        with CryptoDropMonitor(vfs) as monitor:
            report = monitor.export_report()
        assert report["detections"] == []
        assert report["stats"]["detections"] == 0


class TestMultiRootProtection:
    def test_second_protected_root(self):
        """CryptoDrop can watch any set of directories, not just
        My Documents (§IV-A 'protected directories')."""
        from repro.fs import WinPath
        desktop = WinPath(r"C:\Users\victim\Desktop")
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        vfs._ensure_dirs(desktop)
        for i in range(16):
            vfs.peek_write(desktop / f"note{i}.txt", _text(i))
        config = CryptoDropConfig(protected_roots=(DOCUMENTS, desktop))
        monitor = CryptoDropMonitor(vfs, config).attach()
        pid = vfs.processes.spawn("evil.exe").pid
        with pytest.raises(ProcessSuspended):
            for i in range(16):
                _encrypt_in_place(vfs, pid, desktop / f"note{i}.txt")
        assert monitor.detected
