"""Experiment harness at TINY scale: every table/figure regenerates."""

import pytest

from repro.experiments import (PAPER_OVERALL, PAPER_TABLE1, TINY,
                               campaign_at_scale, run_ctb_small_file_rerun,
                               run_fig3, run_fig4, run_fig5, run_fig6,
                               run_performance, run_scripts_experiment,
                               run_table1, run_union_effect,
                               samples_at_scale)
from repro.experiments.reporting import (ascii_bars, ascii_cdf, ascii_table,
                                         header)


@pytest.fixture(scope="module")
def tiny_campaign():
    return campaign_at_scale(TINY)


class TestScaling:
    def test_tiny_keeps_every_family(self):
        samples = samples_at_scale(TINY)
        families = {s.profile.family for s in samples}
        assert len(families) == 15

    def test_tiny_keeps_class_mix(self):
        samples = samples_at_scale(TINY)
        classes = {s.profile.behavior_class for s in samples}
        assert classes == {"A", "B", "C"}

    def test_campaign_cache(self, tiny_campaign):
        assert campaign_at_scale(TINY) is tiny_campaign


class TestTable1:
    def test_full_detection_at_tiny_scale(self, tiny_campaign):
        table = run_table1(TINY, campaign=tiny_campaign)
        assert table.campaign.detection_rate == 1.0

    def test_rows_cover_families(self, tiny_campaign):
        table = run_table1(TINY, campaign=tiny_campaign)
        assert {r.family for r in table.rows} == set(PAPER_TABLE1)

    def test_render_contains_key_lines(self, tiny_campaign):
        text = run_table1(TINY, campaign=tiny_campaign).render()
        assert "teslacrypt" in text and "Median FL" in text
        assert "Detection rate: 100" in text

    def test_row_lookup(self, tiny_campaign):
        table = run_table1(TINY, campaign=tiny_campaign)
        assert table.row("xorist").total >= 1
        with pytest.raises(KeyError):
            table.row("wannacry")


class TestFig3:
    def test_cdf_reaches_one(self, tiny_campaign):
        fig = run_fig3(TINY, campaign=tiny_campaign)
        assert fig.points[-1][1] == pytest.approx(1.0)
        assert fig.fraction_detected_within(fig.maximum) == pytest.approx(1.0)

    def test_render(self, tiny_campaign):
        assert "files lost" in run_fig3(TINY, campaign=tiny_campaign).render()


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4(TINY)

    def test_three_contrasting_samples(self, fig4):
        assert [s.family for s in fig4.samples] == \
            ["teslacrypt", "ctb-locker", "gpcode"]

    def test_teslacrypt_goes_deep_first(self, fig4):
        tesla = fig4.by_family("teslacrypt")
        assert tesla.mean_touched_depth >= fig4.corpus_mean_depth

    def test_gpcode_starts_shallow_and_loses_nothing(self, fig4):
        gpcode = fig4.by_family("gpcode")
        assert gpcode.files_lost == 0            # the read-only quirk
        assert gpcode.mean_touched_depth <= fig4.corpus_mean_depth + 0.5

    def test_render(self, fig4):
        assert "directory-access" in fig4.render()


class TestFig5:
    def test_productivity_formats_lead(self, tiny_campaign):
        fig = run_fig5(TINY, campaign=tiny_campaign)
        top6 = [ext for ext, _count in fig.top(6)]
        assert ".pdf" in top6

    def test_attack_artifacts_excluded(self, tiny_campaign):
        fig = run_fig5(TINY, campaign=tiny_campaign)
        assert ".locked" not in fig.frequencies
        assert ".ecc" not in fig.frequencies

    def test_counts_bounded_by_cohort(self, tiny_campaign):
        fig = run_fig5(TINY, campaign=tiny_campaign)
        n = len(tiny_campaign.working)
        assert all(count <= n for count in fig.frequencies.values())


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6(TINY, suite="five")

    def test_five_apps(self, fig6):
        assert len(fig6.results) == 5

    def test_sweep_monotone_decreasing(self, fig6):
        sweep = fig6.sweep()
        values = [sweep[t] for t in sorted(sweep)]
        assert values == sorted(values, reverse=True)

    def test_word_and_mogrify_zero(self, fig6):
        scores = fig6.final_scores()
        assert scores["WINWORD.EXE"] == 0.0
        assert scores["mogrify.exe"] == 0.0

    def test_no_detections_at_200(self, fig6):
        assert fig6.detected_apps() == []

    def test_render(self, fig6):
        assert "paper score" in fig6.render()


class TestOtherExperiments:
    def test_union_effect_accounting(self, tiny_campaign):
        result = run_union_effect(TINY, campaign=tiny_campaign)
        assert (len(result.class_c_linkable())
                + len(result.class_c_evaders())) == len(result.class_c())
        assert "union" in result.render().lower()

    def test_scripts_experiment_shape(self):
        result = run_scripts_experiment(TINY)
        assert result.original_scan.count == 8
        assert result.engines_lost == 2
        assert result.cryptodrop_detected
        assert result.unseen_virlock_detections <= 2

    def test_ctb_rerun_runs(self):
        result = run_ctb_small_file_rerun(TINY)
        assert result.lost_with_small > 0
        assert result.lost_without_small > 0

    def test_performance_ordering(self):
        result = run_performance(n_files=12, corpus_files=60, repeats=1)
        modelled = result.modelled_ms
        assert modelled["open"] < modelled["close"] < modelled["write"] \
            < modelled["rename"]
        assert "rename" in result.render()


class TestReportingHelpers:
    def test_ascii_table_alignment(self):
        text = ascii_table(("name", "value"), [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_ascii_bars(self):
        text = ascii_bars([("x", 10.0), ("y", 5.0)])
        assert text.splitlines()[0].count("#") > \
            text.splitlines()[1].count("#")

    def test_ascii_bars_empty(self):
        assert ascii_bars([]) == "(no data)"

    def test_ascii_cdf_renders(self):
        text = ascii_cdf([(1, 0.2), (5, 0.7), (10, 1.0)])
        assert "1.0 +" in text and "0.0 +" in text

    def test_header(self):
        assert "My Title" in header("My Title")


class TestDynamicScoring:
    def test_boost_reduces_ctb_losses(self):
        from repro.experiments import TINY, run_dynamic_scoring
        result = run_dynamic_scoring(TINY)
        assert result.ctb_lost_dynamic <= result.ctb_lost_static
        assert result.speedup >= 1.0

    def test_boosted_hits_marked_in_history(self, small_corpus):
        from repro.core import CryptoDropMonitor, default_config
        from repro.ransomware import working_cohort
        from repro.sandbox import VirtualMachine
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        monitor = CryptoDropMonitor(
            machine.vfs, default_config(dynamic_scoring=True)).attach()
        sample = next(s for s in working_cohort()
                      if s.profile.family == "ctb-locker")
        outcome = machine.run_program(sample)
        row = monitor.engine.row_of(outcome.pid)
        boosted = [e for e in row.history if "[boosted]" in e.detail]
        assert boosted
        assert all(e.points == 10.0 for e in boosted)   # 5.0 x 2.0
