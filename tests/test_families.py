"""Per-family behavioural contracts (Table I + §V-C quirks), verified by
running one representative of each family against a shared machine."""

import pytest

from repro.fs import DOCUMENTS
from repro.magic import identify_name
from repro.ransomware import cohort_by_family, instantiate, working_cohort
from repro.sandbox import VirtualMachine, run_sample


@pytest.fixture(scope="module")
def families():
    return cohort_by_family()


@pytest.fixture(scope="module")
def shared_machine(small_corpus):
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    return machine


def _run_first(shared_machine, families, family, index=0,
               record_ops=False):
    sample = families[family][index]
    fresh = instantiate(sample.profile)   # per-run state must be clean
    return run_sample(shared_machine, fresh, record_ops=record_ops)


class TestFamilyContracts:
    def test_teslacrypt_notes_before_encrypting(self, shared_machine,
                                                families):
        result = _run_first(shared_machine, families, "teslacrypt")
        assert result.detected
        assert result.notes_written >= 1

    def test_teslacrypt_wipes_shadow_copies(self, shared_machine,
                                            families):
        shared_machine.shadow.create(4, DOCUMENTS)
        _run_first(shared_machine, families, "teslacrypt")
        assert not shared_machine.shadow.list_copies()

    def test_ctb_locker_attacks_smallest_text_first(self, shared_machine,
                                                    families):
        sample = instantiate(families["ctb-locker"][0].profile)
        run_sample(shared_machine, sample)
        attacked = sample.files_attacked
        assert attacked, "should have reached at least one file"
        assert all(p.suffix in (".txt", ".md") for p in attacked)

    def test_gpcode_class_c_loses_nothing(self, shared_machine, families):
        straggler = families["gpcode"][-1]
        assert straggler.profile.behavior_class == "C"
        result = run_sample(shared_machine,
                            instantiate(straggler.profile))
        assert result.detected
        assert result.files_lost == 0          # §V-C read-only quirk

    def test_virlock_output_is_executable(self, shared_machine, families):
        sample = instantiate(families["virlock"][0].profile)
        result = run_sample(shared_machine, sample)
        assert result.detected
        # rerun unmonitored to inspect the artefacts it leaves
        machine = shared_machine
        sample2 = instantiate(families["virlock"][0].profile)
        machine.run_program(sample2)
        infected = sample2.files_attacked[0]
        assert identify_name(machine.vfs.peek_read(infected)) == "exe"
        machine.revert()

    def test_virlock_runs_as_process_family(self, shared_machine,
                                            families):
        sample = instantiate(families["virlock"][0].profile)
        result = run_sample(shared_machine, sample)
        # detection suspends the whole family even though a child did the work
        assert result.detected and result.suspended

    def test_cryptodefense_union_evader(self, shared_machine, families):
        result = _run_first(shared_machine, families, "cryptodefense")
        assert result.detected
        assert not result.union_fired           # delete-disposal Class C
        assert result.disposal == "delete"

    def test_cryptowall_linkable_class_c(self, shared_machine, families):
        straggler = [s for s in families["cryptowall"]
                     if s.profile.behavior_class == "C"][0]
        result = run_sample(shared_machine, instantiate(straggler.profile))
        assert result.union_fired               # move-over linking
        assert result.disposal == "move_over"

    def test_xorist_fastest_family(self, shared_machine, families):
        result = _run_first(shared_machine, families, "xorist")
        assert result.detected
        assert result.files_lost <= 8           # paper median: 3

    def test_poshcoder_detected_despite_being_script(self, shared_machine,
                                                     families):
        result = _run_first(shared_machine, families, "poshcoder")
        assert result.detected
        assert result.sample_name.startswith("poshcoder")

    def test_every_family_detected(self, shared_machine, families):
        for family, samples in sorted(families.items()):
            result = run_sample(shared_machine,
                                instantiate(samples[0].profile))
            assert result.detected, family

    def test_note_filenames_are_family_branded(self):
        from repro.ransomware import NOTE_FILENAMES, note_text
        import random
        assert "teslacrypt" in NOTE_FILENAMES
        text = note_text("teslacrypt", random.Random(1))
        assert "TESLACRYPT" in text
        assert "BTC" in text

    def test_note_text_deterministic(self):
        from repro.ransomware import note_text
        import random
        assert note_text("xorist", random.Random(5)) == \
            note_text("xorist", random.Random(5))
