"""WinPath semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.fs import DOCUMENTS, WinPath


class TestParsing:
    def test_backslash_parsing(self):
        p = WinPath(r"C:\Users\victim\Documents")
        assert p.parts == ("Users", "victim", "Documents")
        assert p.drive == "C:"

    def test_forward_slash_accepted(self):
        assert WinPath("C:/Users/victim") == WinPath(r"C:\Users\victim")

    def test_default_drive(self):
        assert WinPath(r"\Windows").drive == "C:"

    def test_other_drive(self):
        p = WinPath(r"D:\data")
        assert p.drive == "D:"
        assert p != WinPath(r"C:\data")

    def test_drive_letter_case_insensitive(self):
        assert WinPath(r"c:\x") == WinPath(r"C:\x")

    def test_empty_segments_collapsed(self):
        assert WinPath(r"C:\\a\\\b").parts == ("a", "b")

    def test_dot_segments_ignored(self):
        assert WinPath(r"C:\a\.\b").parts == ("a", "b")

    def test_dotdot_rejected(self):
        with pytest.raises(ValueError):
            WinPath(r"C:\a\..\b")

    def test_copy_constructor(self):
        p = WinPath(r"C:\a\b")
        assert WinPath(p) == p


class TestCaseInsensitivity:
    def test_equality_ignores_case(self):
        assert WinPath(r"C:\Users\VICTIM") == WinPath(r"C:\users\victim")

    def test_hash_ignores_case(self):
        assert hash(WinPath(r"C:\A\B")) == hash(WinPath(r"C:\a\b"))

    def test_display_preserves_case(self):
        assert str(WinPath(r"C:\MyDocs\File.TXT")) == r"C:\MyDocs\File.TXT"


class TestAccessors:
    def test_name_stem_suffix(self):
        p = WinPath(r"C:\docs\Report Final.DOCX")
        assert p.name == "Report Final.DOCX"
        assert p.stem == "Report Final"
        assert p.suffix == ".docx"  # lower-cased

    def test_no_suffix(self):
        assert WinPath(r"C:\docs\README").suffix == ""

    def test_dotfile_has_no_suffix(self):
        assert WinPath(r"C:\docs\.hidden").suffix == ""

    def test_parent(self):
        p = WinPath(r"C:\a\b\c")
        assert p.parent == WinPath(r"C:\a\b")
        assert p.parent.parent.parent == WinPath("C:\\")

    def test_depth(self):
        assert WinPath("C:\\").depth == 0
        assert WinPath(r"C:\a\b").depth == 2

    def test_root_name_empty(self):
        assert WinPath("C:\\").name == ""


class TestComposition:
    def test_truediv(self):
        assert (WinPath(r"C:\a") / "b" / "c.txt") == WinPath(r"C:\a\b\c.txt")

    def test_joinpath_multi(self):
        assert WinPath("C:\\").joinpath("a", "b") == WinPath(r"C:\a\b")

    def test_joinpath_with_separators(self):
        assert WinPath(r"C:\a").joinpath(r"b\c") == WinPath(r"C:\a\b\c")

    def test_with_name(self):
        assert WinPath(r"C:\a\x.txt").with_name("y.pdf") == WinPath(r"C:\a\y.pdf")

    def test_with_suffix(self):
        assert WinPath(r"C:\a\x.txt").with_suffix(".enc") == WinPath(r"C:\a\x.enc")

    def test_with_name_on_root_raises(self):
        with pytest.raises(ValueError):
            WinPath("C:\\").with_name("x")


class TestContainment:
    def test_is_within_self(self):
        assert DOCUMENTS.is_within(DOCUMENTS)

    def test_is_within_child(self):
        assert (DOCUMENTS / "sub" / "f.txt").is_within(DOCUMENTS)

    def test_not_within_sibling(self):
        assert not WinPath(r"C:\Users\victim\Downloads").is_within(DOCUMENTS)

    def test_not_within_prefix_name_trick(self):
        # "DocumentsEvil" is not inside "Documents"
        evil = WinPath(r"C:\Users\victim\DocumentsEvil\f.txt")
        assert not evil.is_within(DOCUMENTS)

    def test_is_within_case_insensitive(self):
        assert WinPath(r"c:\users\VICTIM\documents\x").is_within(DOCUMENTS)

    def test_cross_drive_not_within(self):
        assert not WinPath(r"D:\Users\victim\Documents\x").is_within(DOCUMENTS)

    def test_relative_parts(self):
        p = DOCUMENTS / "a" / "b.txt"
        assert p.relative_parts(DOCUMENTS) == ("a", "b.txt")

    def test_relative_parts_raises_outside(self):
        with pytest.raises(ValueError):
            WinPath(r"C:\other").relative_parts(DOCUMENTS)

    def test_ancestors(self):
        p = WinPath(r"C:\a\b\c")
        assert list(p.ancestors()) == [WinPath(r"C:\a\b"), WinPath(r"C:\a"),
                                       WinPath("C:\\")]


_NAME = st.text(alphabet=st.characters(
    whitelist_categories=("Lu", "Ll", "Nd"), min_codepoint=48,
    max_codepoint=122), min_size=1, max_size=10)


class TestProperties:
    @given(st.lists(_NAME, min_size=0, max_size=6))
    def test_roundtrip_through_str(self, parts):
        p = WinPath("C:\\").joinpath(*parts) if parts else WinPath("C:\\")
        assert WinPath(str(p)) == p

    @given(st.lists(_NAME, min_size=1, max_size=6))
    def test_parent_of_child_is_self(self, parts):
        base = WinPath("C:\\").joinpath(*parts)
        assert (base / "leaf").parent == base

    @given(st.lists(_NAME, min_size=1, max_size=5), _NAME)
    def test_child_is_within_every_ancestor(self, parts, leaf):
        p = WinPath("C:\\").joinpath(*parts) / leaf
        for ancestor in p.ancestors():
            assert p.is_within(ancestor)
