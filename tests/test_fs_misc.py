"""Clock, shadow copies, and the operation recorder."""

import pytest

from repro.fs import (BASE_LATENCY_US, DOCUMENTS, OpKind,
                      OperationRecorder, ShadowCopyService, SimClock,
                      VirtualFileSystem)


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_us(100.0)
        assert clock.now_us == 100.0
        assert clock.now_s == pytest.approx(1e-4)

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance_us(-1.0)

    def test_charge_uses_op_table(self):
        clock = SimClock()
        clock.charge("write")
        assert clock.now_us == BASE_LATENCY_US["write"]

    def test_charge_unknown_kind_falls_back(self):
        clock = SimClock()
        clock.charge("mystery-op")
        assert clock.now_us == BASE_LATENCY_US["other"]

    def test_charge_extra(self):
        clock = SimClock()
        clock.charge("open", extra_us=500.0)
        assert clock.now_us == BASE_LATENCY_US["open"] + 500.0


@pytest.fixture
def shadow_setup():
    vfs = VirtualFileSystem()
    vfs._ensure_dirs(DOCUMENTS)
    pid = vfs.processes.spawn("svc.exe").pid
    vfs.write_file(pid, DOCUMENTS / "a.txt", b"precious")
    service = ShadowCopyService(vfs)
    return vfs, pid, service


class TestShadowCopies:
    def test_create_and_restore(self, shadow_setup):
        vfs, pid, service = shadow_setup
        service.create(pid, DOCUMENTS)
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"ENCRYPTED")
        restored = service.restore_file(DOCUMENTS / "a.txt")
        assert restored == b"precious"

    def test_delete_all_is_teslacrypts_move(self, shadow_setup):
        vfs, pid, service = shadow_setup
        service.create(pid, DOCUMENTS)
        removed = service.delete_all(pid)
        assert removed == 1
        assert service.restore_file(DOCUMENTS / "a.txt") is None

    def test_audit_log_records_actions(self, shadow_setup):
        vfs, pid, service = shadow_setup
        service.create(pid, DOCUMENTS)
        service.delete_all(pid)
        actions = [entry[2] for entry in service.audit]
        assert actions == ["create", "delete_all"]

    def test_disabled_service_refuses_create(self, shadow_setup):
        vfs, pid, service = shadow_setup
        service.disable(pid)
        with pytest.raises(RuntimeError):
            service.create(pid, DOCUMENTS)

    def test_newest_copy_wins(self, shadow_setup):
        vfs, pid, service = shadow_setup
        service.create(pid, DOCUMENTS)
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"v2")
        service.create(pid, DOCUMENTS)
        assert service.restore_file(DOCUMENTS / "a.txt") == b"v2"

    def test_restore_by_id(self, shadow_setup):
        vfs, pid, service = shadow_setup
        first = service.create(pid, DOCUMENTS)
        vfs.write_file(pid, DOCUMENTS / "a.txt", b"v2")
        service.create(pid, DOCUMENTS)
        assert service.restore_file(DOCUMENTS / "a.txt",
                                    shadow_id=first.shadow_id) == b"precious"


class TestRecorder:
    def test_records_operations(self, vfs, pid):
        recorder = OperationRecorder()
        vfs.filters.attach(recorder)
        vfs.write_file(pid, DOCUMENTS / "f.txt", b"x")
        kinds = {rec.kind for rec in recorder.records}
        assert OpKind.WRITE in kinds and OpKind.CLOSE in kinds

    def test_kind_filtering(self, vfs, pid):
        recorder = OperationRecorder(kinds={OpKind.DELETE})
        vfs.filters.attach(recorder)
        vfs.write_file(pid, DOCUMENTS / "f.txt", b"x")
        vfs.delete(pid, DOCUMENTS / "f.txt")
        assert {rec.kind for rec in recorder.records} == {OpKind.DELETE}

    def test_touched_directories(self, vfs, pid):
        recorder = OperationRecorder()
        vfs.filters.attach(recorder)
        vfs.mkdir(pid, DOCUMENTS / "sub")
        vfs.write_file(pid, DOCUMENTS / "sub" / "f.txt", b"x")
        assert DOCUMENTS / "sub" in recorder.touched_directories(pid)

    def test_accessed_extensions(self, vfs, pid):
        recorder = OperationRecorder()
        vfs.filters.attach(recorder)
        vfs.write_file(pid, DOCUMENTS / "f.pdf", b"x")
        vfs.read_file(pid, DOCUMENTS / "f.pdf")
        assert ".pdf" in recorder.accessed_extensions(
            pid, kinds=(OpKind.READ, OpKind.OPEN))

    def test_clear(self, vfs, pid):
        recorder = OperationRecorder()
        vfs.filters.attach(recorder)
        vfs.write_file(pid, DOCUMENTS / "f", b"x")
        recorder.clear()
        assert not recorder.records
