"""Ransomware simulators: cohort composition, per-class behaviour,
family quirks, reversibility of the damage."""

import collections
import random

import pytest

from repro.crypto import chacha20_xor
from repro.fs import DOCUMENTS, TEMP
from repro.magic import identify_name
from repro.ransomware import (RansomwareSample, SampleProfile,
                              TOTAL_HAUL, TOTAL_INERT, TOTAL_WORKING,
                              virustotal_haul, working_cohort)
from repro.ransomware.traversal import order_targets
from repro.sandbox import VirtualMachine, run_sample


class TestCohortComposition:
    """Table I's exact sample counts."""

    @pytest.fixture(scope="class")
    def cohort(self):
        return working_cohort()

    def test_total_is_492(self, cohort):
        assert len(cohort) == TOTAL_WORKING == 492

    def test_class_totals_match_table1(self, cohort):
        counts = collections.Counter(s.profile.behavior_class
                                     for s in cohort)
        assert counts == {"A": 282, "B": 147, "C": 63}

    def test_family_counts_match_table1(self, cohort):
        from repro.experiments import PAPER_TABLE1
        counts = collections.Counter(s.profile.family for s in cohort)
        for family, (a, b, c, total, _median) in PAPER_TABLE1.items():
            assert counts[family] == total, family

    def test_fifteen_families(self, cohort):
        assert len({s.profile.family for s in cohort}) == 15

    def test_sample_names_unique(self, cohort):
        names = [s.name for s in cohort]
        assert len(set(names)) == len(names)

    def test_deterministic_given_seed(self):
        a = [s.profile.seed for s in working_cohort(0)]
        b = [s.profile.seed for s in working_cohort(0)]
        assert a == b

    def test_different_base_seed_changes_samples(self):
        a = [s.profile.seed for s in working_cohort(0)]
        b = [s.profile.seed for s in working_cohort(1)]
        assert a != b

    def test_haul_dimensions(self):
        haul = virustotal_haul()
        assert len(haul) == TOTAL_HAUL == 2663
        inert = [s for s in haul if s.profile.inert_reason]
        assert len(inert) == TOTAL_INERT == 2171


class TestProfileValidation:
    def test_bad_class_rejected(self):
        with pytest.raises(ValueError):
            SampleProfile("x", 0, "D", seed=1)

    def test_bad_disposal_rejected(self):
        with pytest.raises(ValueError):
            SampleProfile("x", 0, "C", seed=1, class_c_disposal="burn")

    def test_bad_note_mode_rejected(self):
        with pytest.raises(ValueError):
            SampleProfile("x", 0, "A", seed=1, note_mode="sky_writing")


def _unmonitored_machine(small_corpus):
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    return machine


class TestClassBehaviours:
    """Run samples with no monitor and inspect the transformation."""

    def test_class_a_overwrites_in_place(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("testfam", 0, "A", seed=3,
                                extensions=(".txt",), max_files=3,
                                rename_suffix=None, note_mode="none")
        sample = RansomwareSample(profile)
        machine.run_program(sample)
        damage = machine.assess()
        assert damage.files_lost == 3
        assert not damage.missing          # same paths, new content
        assert not damage.new_files

    def test_class_a_rename_suffix(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("testfam", 0, "A", seed=3,
                                extensions=(".txt",), max_files=2,
                                rename_suffix=".locked", note_mode="none")
        machine.run_program(RansomwareSample(profile))
        damage = machine.assess()
        assert len(damage.missing) == 2    # originals renamed away
        assert all(str(p).endswith(".locked") for p in damage.new_files)

    def test_class_a_output_is_ciphertext(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("testfam", 0, "A", seed=4,
                                extensions=(".pdf",), max_files=1,
                                rename_suffix=None, note_mode="none")
        sample = RansomwareSample(profile)
        machine.run_program(sample)
        attacked = sample.files_attacked[0]
        assert identify_name(machine.vfs.peek_read(attacked)) == "data"

    def test_class_b_stages_through_temp(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("testfam", 0, "B", seed=5,
                                extensions=(".txt",), max_files=2,
                                rename_suffix=".enc", note_mode="none")
        machine.run_program(RansomwareSample(profile))
        damage = machine.assess()
        assert len(damage.missing) == 2
        assert len(damage.new_files) == 2
        # staging files cleaned out of temp
        assert not [n for n in machine.vfs.listdir(
            machine.vfs.processes.spawn("x").pid, TEMP)
            if n.endswith(".tmp")]

    def test_class_c_delete_leaves_sibling_ciphertext(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("testfam", 0, "C", seed=6,
                                extensions=(".txt",), max_files=2,
                                rename_suffix=".enc", note_mode="none",
                                class_c_disposal="delete",
                                work_in_temp=False)
        machine.run_program(RansomwareSample(profile))
        damage = machine.assess()
        assert len(damage.missing) == 2
        assert len(damage.new_files) == 2

    def test_class_c_move_over_replaces_content(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("testfam", 0, "C", seed=7,
                                extensions=(".txt",), max_files=2,
                                rename_suffix=".enc", note_mode="none",
                                class_c_disposal="move_over",
                                work_in_temp=False)
        machine.run_program(RansomwareSample(profile))
        damage = machine.assess()
        assert len(damage.modified) == 2
        assert not damage.new_files

    def test_damage_is_reversible_with_the_key(self, small_corpus):
        """The defining property of crypto-ransomware (§III): the
        transformation is decryptable by whoever holds the key."""
        from repro.ransomware.ciphers import CipherEngine
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("testfam", 0, "A", seed=8,
                                cipher_kind="chacha",
                                extensions=(".txt",), max_files=1,
                                rename_suffix=None, note_mode="none")
        sample = RansomwareSample(profile)
        original = {p: bytes(machine.vfs.peek_read(p))
                    for p, _ in machine.vfs.peek_walk_files(DOCUMENTS)}
        machine.run_program(sample)
        victim = sample.files_attacked[0]
        cipher_text = machine.vfs.peek_read(victim)
        engine = CipherEngine("chacha", seed=8)
        recovered = chacha20_xor(engine.key32, engine.nonce, cipher_text,
                                 initial_counter=1 << 16)
        assert recovered == original[victim]

    def test_notes_dropped_per_directory(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("teslacrypt", 0, "A", seed=9,
                                extensions=(".txt",), max_files=4,
                                rename_suffix=None, note_mode="per_dir")
        sample = RansomwareSample(profile)
        machine.run_program(sample)
        assert sample.notes_written >= 1
        assert machine.assess().new_files  # notes are new files

    def test_read_only_files_skipped_not_fatal(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        # mark every txt read-only: a Class A sweep should skip them all
        for path, node in machine.vfs.peek_walk_files(DOCUMENTS):
            if path.suffix == ".txt":
                node.attrs.read_only = True
        profile = SampleProfile("testfam", 0, "A", seed=10,
                                extensions=(".txt",), rename_suffix=None,
                                note_mode="none")
        sample = RansomwareSample(profile)
        outcome = machine.run_program(sample)
        assert outcome.completed
        assert machine.assess().files_lost == 0
        assert sample.files_skipped > 0

    def test_inert_sample_touches_nothing(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("vt-unlabeled", 0, "A", seed=11,
                                inert_reason="locker")
        outcome = machine.run_program(RansomwareSample(profile))
        assert outcome.completed
        assert machine.assess().files_lost == 0

    def test_shadow_copy_ritual(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        machine.shadow.create(4, DOCUMENTS)
        profile = SampleProfile("teslacrypt", 0, "A", seed=12,
                                extensions=(".txt",), max_files=1,
                                note_mode="none",
                                delete_shadow_copies=True)
        machine.run_program(RansomwareSample(profile))
        assert not machine.shadow.list_copies()

    def test_prefix_encryption_keeps_tail(self, small_corpus):
        machine = _unmonitored_machine(small_corpus)
        profile = SampleProfile("gpcode", 0, "A", seed=13,
                                extensions=(".pdf",), max_files=1,
                                skip_small=4096, rename_suffix=None,
                                note_mode="none",
                                encrypt_prefix_bytes=2048)
        sample = RansomwareSample(profile)
        original = {p: bytes(n.data)
                    for p, n in machine.vfs.peek_walk_files(DOCUMENTS)}
        machine.run_program(sample)
        victim = sample.files_attacked[0]
        after = machine.vfs.peek_read(victim)
        assert after[:2048] != original[victim][:2048]
        assert after[2048:] == original[victim][2048:]


class TestTraversalStrategies:
    ENTRIES = [
        (DOCUMENTS / "a" / "deep" / "deeper" / "f1.txt", 100, 5),
        (DOCUMENTS / "a" / "f2.txt", 5000, 3),
        (DOCUMENTS / "f3.txt", 50, 2),
        (DOCUMENTS / "b" / "f4.txt", 900, 3),
    ]

    def test_size_ascending(self):
        rng = random.Random(0)
        ordered = order_targets(self.ENTRIES, "size_ascending", rng)
        assert [e[1] for e in ordered] == [50, 100, 900, 5000]

    def test_size_descending(self):
        rng = random.Random(0)
        ordered = order_targets(self.ENTRIES, "size_descending", rng)
        assert [e[1] for e in ordered] == [5000, 900, 100, 50]

    def test_deepest_first(self):
        rng = random.Random(0)
        ordered = order_targets(self.ENTRIES, "dfs_deepest_first", rng)
        assert ordered[0][0].name == "f1.txt"

    def test_top_down_starts_at_root(self):
        rng = random.Random(0)
        ordered = order_targets(self.ENTRIES, "top_down", rng)
        assert ordered[0][0].name == "f3.txt"

    def test_ext_priority_prefers_productivity(self):
        rng = random.Random(0)
        entries = [(DOCUMENTS / "x.mp3", 10, 1), (DOCUMENTS / "y.pdf", 10, 1)]
        ordered = order_targets(entries, "ext_priority", rng)
        assert ordered[0][0].suffix == ".pdf"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            order_targets(self.ENTRIES, "teleport", random.Random(0))

    def test_shuffled_is_seed_deterministic(self):
        a = order_targets(self.ENTRIES, "shuffled", random.Random(5))
        b = order_targets(self.ENTRIES, "shuffled", random.Random(5))
        assert a == b


class TestStaticArtifacts:
    def test_marker_families_share_bytes(self):
        cohort = working_cohort()
        tesla = [s for s in cohort if s.profile.family == "teslacrypt"][:2]
        marker = tesla[0].profile.family_marker
        assert marker and marker in tesla[0].image_bytes
        assert marker in tesla[1].image_bytes

    def test_polymorphic_variants_share_nothing_stable(self):
        cohort = working_cohort()
        virlock = [s for s in cohort if s.profile.family == "virlock"][:2]
        a, b = virlock[0].image_bytes, virlock[1].image_bytes
        # beyond the 64-byte PE header, no 24-byte run in common
        grams = {a[i:i + 24] for i in range(64, len(a) - 24)}
        assert not any(b[i:i + 24] in grams
                       for i in range(64, len(b) - 24))

    def test_poshcoder_image_is_script_text(self):
        sample = next(s for s in working_cohort()
                      if s.profile.family == "poshcoder")
        assert sample.name.endswith(".ps1")
        assert b"Get-ChildItem" in sample.image_bytes
