"""Full-data traces: capture, archive, offline re-detection."""

import pytest

from repro.baselines import no_union
from repro.core import CryptoDropMonitor
from repro.ransomware import cohort_by_family, instantiate
from repro.sandbox import VirtualMachine
from repro.trace import (TraceRecorder, replay_trace, trace_from_json,
                         trace_to_json)


@pytest.fixture(scope="module")
def captured(small_corpus):
    """A TeslaCrypt incident captured with full-data tracing, live
    detector attached (the trace ends where suspension ended the run)."""
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    recorder = TraceRecorder()
    machine.vfs.filters.attach(recorder)
    monitor = CryptoDropMonitor(machine.vfs).attach()
    sample = instantiate(cohort_by_family()["teslacrypt"][0].profile)
    machine.run_program(sample)
    live_detections = list(monitor.detections)
    live_damage = machine.assess()
    monitor.detach()
    machine.vfs.filters.detach(recorder)
    machine.revert()
    return recorder.records, live_detections, live_damage


class TestCaptureAndReplay:
    def test_trace_captures_payloads(self, captured):
        records, _live, _damage = captured
        writes = [r for r in records if r.kind == "write"]
        assert writes and all(r.data is not None for r in writes)

    def test_replay_reproduces_the_detection(self, captured, small_corpus):
        records, live, _damage = captured
        monitor, machine = replay_trace(records, small_corpus)
        assert monitor.detected
        replayed = monitor.detections[0]
        assert replayed.score == live[0].score
        assert replayed.union_fired == live[0].union_fired

    def test_replay_reproduces_the_damage(self, captured, small_corpus):
        records, _live, live_damage = captured
        _monitor, machine = replay_trace(records, small_corpus)
        assert machine.assess().files_lost == live_damage.files_lost

    def test_truncated_trace_stops_short_under_weaker_config(
            self, captured, small_corpus):
        """The captured trace ends where the live detector suspended the
        process; replaying that prefix under a *weaker* configuration
        (union disabled) accumulates the same points but never reaches
        the plain 200 threshold — faithfully showing what that config
        would have seen at the same point in the attack."""
        records, live, _damage = captured
        monitor, _machine = replay_trace(records, small_corpus,
                                         config=no_union())
        row = monitor.score_rows()[0]
        assert not monitor.detected
        # exactly the live score minus the union bonus it never got
        from repro.core import default_config
        assert row.score == live[0].score - default_config().union_bonus
        assert not row.union_fired

    def test_full_incident_replay_under_alternative_config(
            self, small_corpus):
        """Capturing an *unmonitored* incident (the full attack) lets any
        configuration be evaluated offline — union-less CryptoDrop still
        convicts, just later."""
        import dataclasses
        machine = VirtualMachine(small_corpus)
        machine.snapshot()
        recorder = TraceRecorder()
        machine.vfs.filters.attach(recorder)
        profile = dataclasses.replace(
            cohort_by_family()["teslacrypt"][0].profile, max_files=40)
        machine.run_program(instantiate(profile))
        machine.vfs.filters.detach(recorder)
        machine.revert()

        monitor, _machine = replay_trace(recorder.records, small_corpus,
                                         config=no_union())
        assert monitor.detected
        assert not monitor.detections[0].union_fired

    def test_replay_under_lower_threshold_detects_earlier(self, captured,
                                                          small_corpus):
        from repro.core import default_config
        records, live, _damage = captured
        monitor, machine = replay_trace(
            records, small_corpus,
            config=default_config(non_union_threshold=100.0,
                                  union_threshold=90.0))
        assert monitor.detected
        assert machine.assess().files_lost < 10


class TestSerialisation:
    def test_json_roundtrip(self, captured):
        records, _live, _damage = captured
        payload = trace_to_json(records)
        restored = trace_from_json(payload)
        assert restored == records

    def test_roundtripped_trace_still_replays(self, captured, small_corpus):
        records, live, _damage = captured
        restored = trace_from_json(trace_to_json(records))
        monitor, _machine = replay_trace(restored, small_corpus)
        assert monitor.detected
        assert monitor.detections[0].score == live[0].score
