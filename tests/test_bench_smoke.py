"""Structural smoke pass over the ``make bench`` harness (ISSUEs 2–9).

Runs the benchmark harness at smoke scale — seconds, not minutes — and
checks the report's shape (via the harness's own schema validator), the
single-digest invariant, the headline speedups, the campaign-throughput
section, the telemetry-overhead guardrail, and the regression
comparator's accept/reject logic.  Full
numbers live in the newest committed ``BENCH_<N>.json`` (regenerate with
``make bench``, gate with ``make bench-check``).
"""

import copy
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_regression import compare_reports, newest_baseline
from run_bench import main as run_bench_main
from run_bench import run as run_bench
from run_bench import validate_report

pytestmark = pytest.mark.benchmarks


@pytest.fixture(scope="module")
def report():
    return run_bench(smoke=True)


class TestReportShape:
    def test_hot_paths_named_and_positive(self, report):
        for name in ("sdhash_digest", "compare_batched",
                     "close_heavy_campaign", "campaign_throughput",
                     "digest_many_batch", "store_build_batched",
                     "ingest_session", "store_open"):
            assert report["hot_paths"][name]["seconds"] > 0

    def test_schema_validator_accepts_report(self, report):
        assert validate_report(report) == []

    def test_schema_validator_catches_damage(self, report):
        broken = copy.deepcopy(report)
        del broken["hot_paths"]["campaign_throughput"]
        broken["campaign"].pop("speedup")
        problems = validate_report(broken)
        assert any("campaign_throughput" in p for p in problems)
        assert any("speedup" in p for p in problems)

    def test_counters_present(self, report):
        counters = report["counters"]
        assert counters["bytes_closed"] > 0
        assert counters["digest_cache"]["hits"] > 0
        assert counters["op_counts"]["close"] > 0
        assert counters["op_wall_us"]["close"] > 0

    def test_json_serialisable(self, report):
        json.dumps(report)


class TestInvariantsAndSpeedups:
    def test_single_digest_invariant(self, report):
        assert report["invariants"]["bytes_digested_le_bytes_closed"]
        counters = report["counters"]
        assert counters["bytes_digested"] <= counters["bytes_closed"]

    def test_close_path_speedup(self, report):
        # ISSUE 2 target: ≥2x on close-heavy campaigns (cache on vs off)
        assert report["speedups"]["close_path_cached_vs_uncached"] >= 2.0

    def test_compare_speedup(self, report):
        # smoke scale uses fewer filters than the ≥5x/32-filter bar the
        # full bench pins (benchmarks/bench_compare_batch.py); even so the
        # batched path must already win
        assert report["speedups"]["compare_batched_vs_scalar"] >= 2.0

    def test_digest_vectorisation_wins(self, report):
        assert report["speedups"]["sdhash_vectorised_vs_scalar"] >= 1.5

    def test_campaign_results_identical_across_modes(self, report):
        # the ISSUE-3 correctness bar: store-backed, store-less, serial
        # and parallel runs agree bit-for-bit on detection outcomes
        assert report["invariants"]["campaign_results_identical"]
        assert report["campaign"]["results_identical"]

    def test_store_leaves_untouched_corpus_undigested(self, report):
        assert report["invariants"]["store_untouched_bytes_digested_zero"]

    def test_digest_many_beats_per_file(self, report):
        # the ISSUE-5 bar is ≥2x on a 32-doc batch at full scale; even the
        # 16-doc smoke batch must already win
        assert report["speedups"]["digest_many_vs_per_file"] > 1.0
        assert report["invariants"]["digest_many_identical"]

    def test_store_build_batched_beats_serial(self, report):
        # full scale gates ≥3x (store_build_speedup_ge_3); smoke only pins
        # a win plus entry-for-entry identity with the serial reference
        assert report["speedups"]["store_build_batched_vs_serial"] > 1.0
        assert report["invariants"]["store_build_identical"]
        assert report["store_build"]["entries_identical"]
        assert report["store_build"]["entries"] > 0

    def test_batched_campaign_results_identical(self, report):
        # scheduler-deferred digesting must not perturb a single verdict
        assert report["invariants"]["batch_results_identical"]

    def test_campaign_section_counters(self, report):
        sweep = report["campaign"]
        assert sweep["samples"] > 0
        assert sweep["store_entries"] > 0
        # the store sits in the resolution path for every first-touch
        # inspection; whether lookups hit depends on the cohort's attack
        # shapes, so smoke only pins that it was consulted (the committed
        # full-scale baseline pins store_hits > 0 below)
        assert sweep["store_hits"] + sweep["store_misses"] > 0
        # smoke legs run ~25ms each, so the ratio is scheduler noise —
        # the ≥3x bar is gated at full scale (campaign_speedup_ge_3)
        assert sweep["speedup"] > 0
        assert sweep["store_build_seconds"] > 0


class TestTelemetryOverhead:
    def test_disabled_path_costs_under_two_percent(self, report):
        # the ISSUE-4 bar: with telemetry disabled every emit point is a
        # single None check, so the close-heavy workload must run within
        # 2% of the (equally telemetry-free) regression-gated hot path
        assert report["telemetry_overhead"]["disabled_vs_baseline"] < 1.02

    def test_enabled_path_captures_events(self, report):
        assert report["telemetry_overhead"]["events_captured"] > 0

    def test_counters_identical_either_way(self, report):
        # telemetry observes the engine; it must never perturb what the
        # engine counts
        assert report["telemetry_overhead"]["counters_identical"]
        assert report["invariants"]["telemetry_counters_identical"]

    def test_detection_results_identical_either_way(self, report):
        assert report["telemetry_overhead"]["campaign_results_identical"]
        assert report["invariants"]["telemetry_results_identical"]

    def test_schema_validator_requires_section(self, report):
        broken = copy.deepcopy(report)
        del broken["telemetry_overhead"]["disabled_vs_baseline"]
        broken["invariants"].pop("telemetry_counters_identical")
        problems = validate_report(broken)
        assert any("disabled_vs_baseline" in p for p in problems)
        assert any("telemetry_counters_identical" in p for p in problems)


class TestStreamingDigestSection:
    def test_streamed_digest_identical_to_whole_file(self, report):
        # the ISSUE-7 correctness bar: the incremental stream is the
        # same digest by another route, bit for bit
        assert report["invariants"]["streaming_digest_identical"]
        assert report["streaming_digest"]["digests_identical"]

    def test_append_only_stream_never_fell_back(self, report):
        assert report["invariants"]["streaming_no_fallbacks"]
        section = report["streaming_digest"]
        assert section["streams_finalized"] >= 1
        assert section["bytes_streamed"] >= section["file_bytes"]

    def test_campaign_results_identical_streaming_on_off(self, report):
        assert report["invariants"]["streaming_results_identical"]

    def test_streamed_close_wins(self, report):
        # the ≥5x bar is gated at full scale
        # (streaming_close_speedup_ge_5); even an 8 MiB smoke file must
        # already beat the whole-file digest clearly
        assert report["speedups"]["streaming_close_vs_whole_file"] > 2.0

    def test_schema_validator_requires_section(self, report):
        broken = copy.deepcopy(report)
        del broken["streaming_digest"]["close_speedup"]
        broken["invariants"].pop("streaming_digest_identical")
        problems = validate_report(broken)
        assert any("close_speedup" in p for p in problems)
        assert any("streaming_digest_identical" in p for p in problems)


class TestStorePersistence:
    def test_backend_verdicts_identical(self, report):
        # the ISSUE-9 correctness bar: the mmap backend is storage,
        # never semantics — dict and disk legs agree bit-for-bit
        assert report["invariants"]["store_backend_results_identical"]
        assert report["store_persistence"]["results_identical"]
        assert report["invariants"]["store_fingerprint_identical"]
        assert report["store_persistence"]["storage_legs"] == \
            ["dict", "mmap"]

    def test_mmap_leg_consulted_the_store(self, report):
        # whether campaign lookups hit depends on the cohort's attack
        # shapes, same caveat as the campaign section; the sweep below
        # pins hits == lookups on pristine content
        section = report["store_persistence"]
        assert section["mmap_store_hits"] + section["mmap_store_misses"] > 0

    def test_pristine_rerun_digests_nothing(self, report):
        assert report["invariants"]["store_rerun_bytes_digested_zero"]
        for leg in report["store_persistence"]["scaling"]:
            assert leg["sweep_bytes_digested"] == 0
            assert leg["sweep_store_hits"] == leg["lookups"]
            assert leg["page_ins"] > 0

    def test_residency_bounded_and_files_clean(self, report):
        assert report["invariants"]["store_resident_bounded"]
        assert report["invariants"]["store_fsck_clean"]
        for leg in report["store_persistence"]["scaling"]:
            assert leg["resident"] <= leg["hot_entries"]
            assert leg["fsck_ok"]

    def test_reopen_beats_rebuild(self, report):
        # the ≤50 ms / ≥100x bars are gated at full scale
        # (store_open_le_50ms, store_open_vs_rebuild_ge_100); even the
        # ~1k-entry smoke store must reopen clearly faster than it built
        assert report["speedups"]["store_open_vs_rebuild"] > 1.0
        for leg in report["store_persistence"]["scaling"]:
            assert leg["open_seconds"] < leg["build_seconds"]

    def test_schema_validator_requires_section(self, report):
        broken = copy.deepcopy(report)
        del broken["store_persistence"]["open_vs_rebuild"]
        broken["invariants"].pop("store_backend_results_identical")
        problems = validate_report(broken)
        assert any("open_vs_rebuild" in p for p in problems)
        assert any("store_backend_results_identical" in p
                   for p in problems)

    def test_comparator_gates_scaling_tiers(self, report):
        slow = copy.deepcopy(report)
        leg = slow["store_persistence"]["scaling"][-1]
        leg["open_seconds"] *= 2.0
        regs = compare_reports(report, slow, threshold=0.25)
        assert [r[0] for r in regs] == [f"store_open[{leg['files']}]"]


class TestIngestResilience:
    def test_verdicts_survive_the_fault_storm(self, report):
        # the ISSUE-6 correctness bar: kills, poisons, stalls and
        # transient denials change nothing about what the detector
        # decides once the watchdog has replayed the lost tail
        assert report["invariants"]["ingest_verdicts_identical"]
        assert report["ingest_resilience"]["verdicts_identical"]

    def test_no_cross_tenant_leakage(self, report):
        assert report["invariants"]["ingest_no_cross_tenant_events"]

    def test_every_shed_is_observable(self, report):
        # degraded mode must be loud: each dropped record surfaces as a
        # LoadShed bus event and a per-tenant counter increment
        assert report["invariants"]["ingest_shed_observable"]
        resilience = report["ingest_resilience"]
        assert resilience["sheds"] > 0
        assert resilience["shed_events_observed"] == resilience["sheds"]

    def test_nonshed_tenants_unchanged_under_overload(self, report):
        assert report["invariants"]["ingest_nonshed_unchanged"]

    def test_faults_actually_fired(self, report):
        resilience = report["ingest_resilience"]
        assert resilience["shard_kills"] > 0
        assert resilience["restarts"] > 0
        assert resilience["events_applied"] > 0

    def test_throughput_ratio_positive(self, report):
        # the ≥0.70 bar is gated at full scale
        # (ingest_throughput_ratio_ge_0p7); smoke legs are too short to
        # pin a ratio against scheduler noise
        assert report["ingest_resilience"]["throughput_ratio"] > 0

    def test_schema_validator_requires_section(self, report):
        broken = copy.deepcopy(report)
        del broken["ingest_resilience"]["throughput_ratio"]
        broken["invariants"].pop("ingest_verdicts_identical")
        problems = validate_report(broken)
        assert any("throughput_ratio" in p for p in problems)
        assert any("ingest_verdicts_identical" in p for p in problems)


class TestComparator:
    def test_no_regression_against_self(self, report):
        assert compare_reports(report, report) == []

    def test_detects_slowdown(self, report):
        slow = copy.deepcopy(report)
        entry = slow["hot_paths"]["sdhash_digest"]
        entry["seconds"] *= 2.0
        regs = compare_reports(report, slow, threshold=0.25)
        assert [r[0] for r in regs] == ["sdhash_digest"]

    def test_tolerates_slowdown_below_threshold(self, report):
        slow = copy.deepcopy(report)
        slow["hot_paths"]["sdhash_digest"]["seconds"] *= 1.10
        assert compare_reports(report, slow, threshold=0.25) == []

    def test_speedup_never_fails(self, report):
        fast = copy.deepcopy(report)
        for entry in fast["hot_paths"].values():
            entry["seconds"] *= 0.5
        assert compare_reports(report, fast) == []

    def test_new_paths_ignored(self, report):
        grown = copy.deepcopy(report)
        grown["hot_paths"]["brand_new_bench"] = {"seconds": 1.0}
        assert compare_reports(report, grown) == []

    def test_scale_mismatch_rejected(self, report):
        full = copy.deepcopy(report)
        full["scale"] = "full"
        with pytest.raises(ValueError):
            compare_reports(report, full)


class TestCli:
    def test_writes_report_and_exits_zero(self, tmp_path):
        out = tmp_path / "bench.json"
        assert run_bench_main(["--smoke", "--output", str(out)]) == 0
        written = json.loads(out.read_text())
        assert written["scale"] == "smoke"

    def test_committed_baseline_matches_schema(self, report):
        baseline_path = newest_baseline()
        assert baseline_path.name == "BENCH_8.json"
        baseline = json.loads(baseline_path.read_text())
        assert baseline["schema"] == report["schema"]
        assert baseline["scale"] == "full"
        assert set(report["hot_paths"]) <= set(baseline["hot_paths"])
        assert baseline["invariants"]["bytes_digested_le_bytes_closed"]
        assert baseline["invariants"]["campaign_results_identical"]
        assert baseline["campaign"]["store_hits"] > 0
        assert validate_report(baseline) == []
