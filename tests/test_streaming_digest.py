"""Streaming incremental digests (ISSUE 7).

The contract under test, layer by layer:

* :class:`StreamingDigestState` must produce **bit-identical** digests to
  whole-buffer :func:`sdhash` for *every* chunking of the same bytes —
  including chunks smaller than one ``WINDOW``, anchors whose context
  straddles chunk boundaries, and the ``None`` gates (size / feature
  floors) — and its in-flight state must survive a JSON checkpoint
  round-trip without perturbing the result.
* The engine must stream append-only write patterns and fall back to the
  whole-content close path (counted per reason) on anything else:
  overwrites, seeks, truncates, handle interleaving, length mismatches.
* Detection output — scores, verdicts, timelines, recorded baselines —
  must be bit-identical with ``streaming_digests`` on or off, in plain
  runs and under an injected-fault chaos campaign.
"""

import json
import random

import pytest

from repro.core import CryptoDropConfig, CryptoDropMonitor
from repro.core.filestate import DigestCache
from repro.corpus.wordlists import paragraphs
from repro.crypto import chacha20_xor
from repro.faults import FaultInjector, transient_faults
from repro.fs import DOCUMENTS, ProcessSuspended, TEMP, VirtualFileSystem
from repro.ransomware import instantiate, working_cohort
from repro.sandbox import run_sample
from repro.simhash import sdhash
from repro.simhash.sdhash import (MIN_DIGEST_BYTES, WINDOW,
                                  StreamingDigestState, _STREAM_TAIL,
                                  sdhash_scalar)
from repro.telemetry import StreamDigestFinalized, event_from_dict

KEY, NONCE = bytes(32), bytes(12)


def _text(seed, n=6000):
    return paragraphs(random.Random(seed), n).encode()


def _chunked(content, size):
    return [content[i:i + size] for i in range(0, len(content), size)]


def _random_chunks(content, seed):
    rng = random.Random(seed)
    out, i = [], 0
    while i < len(content):
        step = rng.randrange(1, 4096)
        out.append(content[i:i + step])
        i += step
    return out


def _stream(chunks, min_stream_bytes=0):
    state = StreamingDigestState(min_stream_bytes=min_stream_bytes)
    for chunk in chunks:
        state.update(chunk)
    return state


def _assert_same(got, ref):
    if ref is None:
        assert got is None
        return
    assert got is not None
    assert got.hexdigest() == ref.hexdigest()
    assert got.n_features == ref.n_features
    assert got.source_len == ref.source_len
    assert len(got) == len(ref)


class TestBitIdentity:
    # chunkings that exercise every boundary class: sub-window chunks
    # (anchors + their 8-byte rolling context straddle chunk joins),
    # exactly-one-window, one-past-the-carried-tail, page-ish, ragged
    CHUNKS = [7, 63, WINDOW, WINDOW + 1, _STREAM_TAIL, _STREAM_TAIL + 1,
              1024, 4096]

    def _contents(self):
        rng = random.Random(5)
        return [
            rng.randbytes(MIN_DIGEST_BYTES),       # exactly at the floor
            rng.randbytes(30_000),                 # anchor-dense
            _text(1, 9000),                        # realistic document
            bytes(4096),                           # zeros: typed, gated
            _text(2, 40_000) + rng.randbytes(2000),
        ]

    def test_matrix_matches_whole_buffer(self):
        for content in self._contents():
            ref = sdhash(content)
            for size in self.CHUNKS:
                got = _stream(_chunked(content, size)).finalize()
                _assert_same(got, ref)
            got = _stream(_random_chunks(content, 23)).finalize()
            _assert_same(got, ref)
            got = _stream([content]).finalize()  # whole buffer at once
            _assert_same(got, ref)

    def test_single_byte_chunks(self):
        # the worst chunking there is: every anchor context, window and
        # popularity neighbourhood straddles a chunk boundary
        content = _text(3, 700)
        ref = sdhash(content)
        _assert_same(_stream(_chunked(content, 1)).finalize(), ref)

    def test_matches_scalar_reference(self):
        content = _text(4, 8000)
        got = _stream(_chunked(content, 100)).finalize()
        ref = sdhash_scalar(content)
        _assert_same(got, ref)

    def test_none_gates_match(self):
        rng = random.Random(9)
        for content in (b"", b"short", rng.randbytes(WINDOW - 1),
                        rng.randbytes(MIN_DIGEST_BYTES - 1), bytes(2048),
                        b"ab" * 40):
            got = _stream(_chunked(content, 5)).finalize()
            _assert_same(got, sdhash(content))

    def test_empty_chunks_are_no_ops(self):
        content = _text(6, 3000)
        state = StreamingDigestState()
        for chunk in _chunked(content, 512):
            state.update(b"")
            state.update(chunk)
        state.update(b"")
        _assert_same(state.finalize(), sdhash(content))

    def test_key_matches_digest_cache_key(self):
        content = _text(7, 2000)
        state = _stream(_chunked(content, 333))
        assert state.key() == DigestCache.key(content)

    def test_finalize_twice_raises(self):
        state = _stream([b"x" * 1000])
        state.finalize()
        with pytest.raises(RuntimeError):
            state.finalize()


class TestBufferedMode:
    def test_threshold_crossing_preserves_identity(self):
        content = _text(8, 20_000)
        ref = sdhash(content)
        for threshold in (1, 100, 5000, len(content), len(content) + 1,
                          10 ** 9):
            state = _stream(_chunked(content, 777),
                            min_stream_bytes=threshold)
            assert state.streaming == (threshold <= len(content))
            _assert_same(state.finalize(), ref)

    def test_buffered_until_threshold(self):
        state = StreamingDigestState(min_stream_bytes=1000)
        state.update(b"a" * 999)
        assert not state.streaming
        state.update(b"b")  # crosses: replays the buffered refs
        assert state.streaming
        assert state.total == 1000


class TestCheckpointRestore:
    def _roundtrip(self, state):
        return StreamingDigestState.from_state(
            json.loads(json.dumps(state.to_state())))

    def test_midstream_cuts_preserve_identity(self):
        content = _text(10, 30_000)
        ref = sdhash(content)
        for cut in (0, 1, 999, len(content) // 2, len(content) - 1):
            state = _stream(_chunked(content[:cut], 900))
            restored = self._roundtrip(state)
            for chunk in _chunked(content[cut:], 900):
                restored.update(chunk)
            _assert_same(restored.finalize(), ref)

    def test_buffered_state_roundtrips(self):
        content = _text(11, 4000)
        state = _stream(_chunked(content[:2000], 300),
                        min_stream_bytes=10 ** 9)
        restored = self._roundtrip(state)
        assert not restored.streaming
        for chunk in _chunked(content[2000:], 300):
            restored.update(chunk)
        _assert_same(restored.finalize(), sdhash(content))

    def test_restored_state_has_no_cache_key(self):
        state = _stream(_chunked(_text(12, 2000), 500))
        assert state.key() is not None
        assert self._roundtrip(state).key() is None


@pytest.fixture
def env():
    def make(**overrides):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        vfs._ensure_dirs(TEMP)
        for i in range(12):
            vfs.peek_write(DOCUMENTS / f"doc{i}.txt", _text(i))
        overrides.setdefault("stream_digest_min_bytes", 0)
        config = CryptoDropConfig(telemetry_enabled=True, **overrides)
        monitor = CryptoDropMonitor(vfs, config=config).attach()
        pid = vfs.processes.spawn("sample.exe").pid
        return vfs, monitor, pid
    return make


def _encrypt_in_place(vfs, pid, path):
    handle = vfs.open(pid, path, "rw")
    data = vfs.read(pid, handle)
    vfs.seek(pid, handle, 0)
    vfs.write(pid, handle, chacha20_xor(KEY, NONCE, data))
    vfs.close(pid, handle)


def _run_encryptor(vfs, monitor, pid):
    try:
        for i in range(12):
            _encrypt_in_place(vfs, pid, DOCUMENTS / f"doc{i}.txt")
    except ProcessSuspended:
        pass


def _append_file(vfs, pid, path, chunks):
    handle = vfs.open(pid, path, "w", create=True, truncate=True)
    for chunk in chunks:
        vfs.write(pid, handle, chunk)
    vfs.close(pid, handle)


def _detection_output(monitor, pid):
    """Everything the ISSUE's identity invariant covers: verdicts,
    score trajectories, and the telemetry-rebuilt timeline."""
    report = monitor.export_report()
    timeline = monitor.timeline(root_pid=monitor.engine._root_pid(pid))
    return {
        "detections": report["detections"],
        "processes": report["processes"],
        "timeline": [(e.timestamp_us, e.indicator, e.points,
                      e.score_after, e.path) for e in timeline.entries],
        "union": None if timeline.union is None
                 else (timeline.union.timestamp_us,
                       timeline.union.score_after,
                       timeline.union.threshold_after),
    }


class TestEngineStreaming:
    def test_append_only_writes_stream_the_close(self, env):
        vfs, monitor, pid = env()
        content = _text(50, 30_000)
        _append_file(vfs, pid, DOCUMENTS / "fresh.txt",
                     _chunked(content, 4096))
        # re-open and rewrite the whole file at offset 0: still a valid
        # stream (the write mirrors the final content exactly)
        _encrypt_in_place(vfs, pid, DOCUMENTS / "fresh.txt")
        stats = monitor.engine.stream_stats()
        assert stats["enabled"]
        assert stats["started"] >= 2
        assert stats["finalized"] >= 1
        assert stats["bytes_streamed"] >= len(content)
        assert stats["in_flight"] == 0
        assert monitor.stats()["streaming"] == stats
        dc = monitor.engine.cache.digest_cache
        assert dc.stats()["bytes_streamed"] >= len(content)

    def test_streamed_digest_matches_whole_file(self, env):
        vfs, monitor, pid = env()
        content = _text(51, 20_000)
        _append_file(vfs, pid, DOCUMENTS / "streamed.bin",
                     _chunked(content, 1000))
        node_id = vfs.peek_stat(DOCUMENTS / "streamed.bin").node_id
        record = monitor.engine.cache.get(node_id)
        assert record is not None and record.base_digest is not None
        assert record.base_digest.hexdigest() == sdhash(content).hexdigest()

    def test_nonsequential_write_falls_back(self, env):
        vfs, monitor, pid = env()
        handle = vfs.open(pid, DOCUMENTS / "seeky.txt", "w", create=True)
        vfs.write(pid, handle, b"a" * 1000)
        vfs.seek(pid, handle, 0)
        vfs.write(pid, handle, b"b" * 10)
        vfs.close(pid, handle)
        stats = monitor.engine.stream_stats()
        assert stats["fallbacks"].get("nonsequential", 0) >= 1
        assert stats["finalized"] == 0

    def test_truncate_falls_back(self, env):
        vfs, monitor, pid = env()
        handle = vfs.open(pid, DOCUMENTS / "trunc.txt", "w", create=True)
        vfs.write(pid, handle, b"c" * 1000)
        vfs.truncate_handle(pid, handle, 100)
        vfs.close(pid, handle)
        stats = monitor.engine.stream_stats()
        assert stats["fallbacks"].get("truncate", 0) >= 1

    def test_reopen_with_truncate_drops_other_handles_stream(self, env):
        vfs, monitor, pid = env()
        h1 = vfs.open(pid, DOCUMENTS / "reopen.txt", "w", create=True)
        vfs.write(pid, h1, b"d" * 2000)
        vfs.open(pid, DOCUMENTS / "reopen.txt", "w", truncate=True)
        stats = monitor.engine.stream_stats()
        assert stats["fallbacks"].get("truncate", 0) >= 1
        assert stats["in_flight"] == 0

    def test_handle_interleave_falls_back(self, env):
        vfs, monitor, pid = env()
        h1 = vfs.open(pid, DOCUMENTS / "shared.txt", "w", create=True)
        vfs.write(pid, h1, b"e" * 1500)
        h2 = vfs.open(pid, DOCUMENTS / "shared.txt", "rw")
        vfs.seek(pid, h2, 1500)
        vfs.write(pid, h2, b"f" * 10)
        stats = monitor.engine.stream_stats()
        assert stats["fallbacks"].get("handle_interleave", 0) >= 1
        vfs.close(pid, h2)
        vfs.close(pid, h1)

    def test_partial_overwrite_is_a_length_mismatch(self, env):
        vfs, monitor, pid = env()
        # doc0 holds ~6000 bytes; an offset-0 write of 100 starts a
        # stream that never sees the surviving tail
        handle = vfs.open(pid, DOCUMENTS / "doc0.txt", "rw")
        vfs.write(pid, handle, b"g" * 100)
        vfs.close(pid, handle)
        stats = monitor.engine.stream_stats()
        assert stats["fallbacks"].get("length_mismatch", 0) >= 1
        assert stats["finalized"] == 0

    def test_streaming_off_starts_no_streams(self, env):
        vfs, monitor, pid = env(streaming_digests=False)
        _run_encryptor(vfs, monitor, pid)
        stats = monitor.engine.stream_stats()
        assert not stats["enabled"]
        assert stats["started"] == stats["finalized"] == 0

    def test_buffered_below_threshold_is_not_a_fallback(self, env):
        vfs, monitor, pid = env(stream_digest_min_bytes=1 << 20)
        _append_file(vfs, pid, DOCUMENTS / "small.txt",
                     _chunked(_text(52, 5000), 512))
        stats = monitor.engine.stream_stats()
        assert stats["started"] >= 1
        # never crossed the threshold: no numpy work was done, the close
        # takes the whole-content path without counting a fallback
        assert stats["finalized"] == 0
        assert stats["fallbacks"] == {}


class TestStreamingIdentity:
    def test_detection_output_identical_streaming_on_off(self, env):
        outputs = []
        for streaming in (True, False):
            vfs, monitor, pid = env(streaming_digests=streaming)
            _run_encryptor(vfs, monitor, pid)
            outputs.append(_detection_output(monitor, pid))
            monitor.detach()
        assert outputs[0] == outputs[1]

    def test_checkpoints_identical_streaming_on_off(self, env):
        states = []
        for streaming in (True, False):
            vfs, monitor, pid = env(streaming_digests=streaming)
            _run_encryptor(vfs, monitor, pid)
            state = monitor.checkpoint()
            # the knob changes how digests materialise, never their
            # value: everything except the bookkeeping counters must be
            # bit-identical (recorded baselines included)
            del state["telemetry"]
            del state["op_wall_us"]
            del state["streams"]
            del state["cache"]["digest_cache"]
            states.append(state)
        assert states[0] == states[1]

    def test_stream_counters_survive_checkpoint(self, env):
        vfs, monitor, pid = env()
        _append_file(vfs, pid, DOCUMENTS / "persist.txt",
                     _chunked(_text(53, 10_000), 1024))
        before = monitor.engine.stream_stats()
        assert before["finalized"] >= 1
        restored = CryptoDropMonitor.from_checkpoint(
            VirtualFileSystem(), monitor.checkpoint(),
            config=CryptoDropConfig(telemetry_enabled=True,
                                    stream_digest_min_bytes=0))
        after = restored.engine.stream_stats()
        for key in ("started", "finalized", "bytes_streamed", "fallbacks"):
            assert after[key] == before[key]
        assert after["in_flight"] == 0

    @pytest.mark.chaos
    def test_chaos_campaign_verdicts_identical_streaming_on_off(
            self, machine):
        def verdict(result):
            return (result.sample_name, result.detected, result.suspended,
                    result.files_lost, result.score, result.threshold,
                    result.union_fired, sorted(result.flags), result.error,
                    result.completed)

        subset = [s.profile for s in working_cohort()
                  if s.profile.family in ("xorist", "teslacrypt")][:4]
        plan = transient_faults(seed=41, deny_rate=0.05,
                                short_read_rate=0.05,
                                latency_spike_rate=0.02)
        sweeps = []
        for streaming in (True, False):
            config = CryptoDropConfig(streaming_digests=streaming,
                                      stream_digest_min_bytes=0)
            injector = FaultInjector(plan)
            machine.vfs.filters.attach(injector)
            try:
                results = [run_sample(machine, instantiate(p), config)
                           for p in subset]
            finally:
                machine.vfs.filters.detach(injector)
            assert injector.stats()["ops_seen"] > 0
            sweeps.append([verdict(r) for r in results])
        assert sweeps[0] == sweeps[1]


class TestSchedulerWatermark:
    def test_cap_forces_flush(self, env):
        vfs, monitor, pid = env(scheduler_pending_bytes_cap=1000)
        scheduler = monitor.engine.scheduler
        assert scheduler.pending_bytes_cap == 1000
        _run_encryptor(vfs, monitor, pid)
        stats = scheduler.stats()
        assert stats["forced_flushes"] >= 1
        assert stats["pending_bytes"] <= 1000

    def test_pending_bytes_tracks_gauge(self, env):
        vfs, monitor, pid = env()
        scheduler = monitor.engine.scheduler
        content = vfs.peek_read(DOCUMENTS / "doc1.txt")
        handle = vfs.open(pid, DOCUMENTS / "doc1.txt", "rw")
        vfs.write(pid, handle, b"x")
        assert scheduler.pending_bytes == len(content)
        gauge = monitor.telemetry_export()["metrics"][
            "cryptodrop_scheduler_pending_bytes"]["state"]
        assert gauge[0][1] == float(len(content))
        monitor.flush_inspections()
        assert scheduler.pending_bytes == 0
        gauge = monitor.telemetry_export()["metrics"][
            "cryptodrop_scheduler_pending_bytes"]["state"]
        assert gauge[0][1] == 0.0
        vfs.close(pid, handle)

    def test_discard_releases_pending_bytes(self, env):
        vfs, monitor, pid = env()
        scheduler = monitor.engine.scheduler
        content = vfs.peek_read(DOCUMENTS / "doc2.txt")
        node_id = vfs.peek_stat(DOCUMENTS / "doc2.txt").node_id
        handle = vfs.open(pid, DOCUMENTS / "doc2.txt", "rw")
        vfs.write(pid, handle, b"y")
        assert scheduler.pending_bytes == len(content)
        scheduler.discard(node_id)
        assert scheduler.pending_bytes == 0
        gauge = monitor.telemetry_export()["metrics"][
            "cryptodrop_scheduler_pending_bytes"]["state"]
        assert gauge[0][1] == 0.0
        vfs.close(pid, handle)

    def test_zero_cap_never_forces(self, env):
        vfs, monitor, pid = env()  # default test config: cap from config
        _run_encryptor(vfs, monitor, pid)
        # the default 64 MiB cap is far above what 12 docs can pend
        assert monitor.engine.scheduler.stats()["forced_flushes"] == 0


class TestStreamingTelemetry:
    def test_streamed_close_emits_event_and_counters(self, env):
        vfs, monitor, pid = env()
        content = _text(54, 15_000)
        _append_file(vfs, pid, DOCUMENTS / "telem.txt",
                     _chunked(content, 2048))
        events = monitor.telemetry.bus.events("stream_digest_finalized")
        assert events, "streamed close must emit StreamDigestFinalized"
        event = events[-1]
        assert event.size == len(content)
        assert event.chunks == len(_chunked(content, 2048))
        assert event.features > 0
        assert event.path.endswith("telem.txt")
        metrics = monitor.telemetry_export()["metrics"]
        streamed = metrics[
            "cryptodrop_incremental_digest_bytes_total"]["state"]
        assert streamed and streamed[0][1] >= float(len(content))

    def test_fallback_counter_labelled_by_reason(self, env):
        vfs, monitor, pid = env()
        handle = vfs.open(pid, DOCUMENTS / "fb.txt", "w", create=True)
        vfs.write(pid, handle, b"h" * 800)
        vfs.seek(pid, handle, 0)
        vfs.write(pid, handle, b"i")
        vfs.close(pid, handle)
        metrics = monitor.telemetry_export()["metrics"]
        state = metrics["cryptodrop_stream_digest_fallback_total"]["state"]
        reasons = {dict(map(tuple, labels)).get("reason"): value
                   for labels, value in state}
        assert reasons.get("nonsequential", 0) >= 1

    def test_event_roundtrips_through_dict(self):
        event = StreamDigestFinalized(12.5, path="x.txt", size=9,
                                      features=3, chunks=2)
        assert event_from_dict(event.as_dict()) == event

    def test_ingest_shard_reports_stream_stats(self, machine):
        from repro.ingest import MonitorShard
        shard = MonitorShard("tenant-x", machine, [],
                             config=CryptoDropConfig(telemetry_enabled=True))
        assert shard.stats()["streaming"] is None  # not started yet
        shard.start()
        try:
            streaming = shard.stats()["streaming"]
            assert streaming is not None and streaming["enabled"]
        finally:
            shard.stop()
