"""Benign-app mechanics in detail: the save dances, media transforms,
and scope discipline that §V-F's zero-score results depend on."""

import random

import pytest

from repro.benign import (Chrome, Dropbox, MicrosoftWord, MusicBee,
                          PiriformCCleaner, ResophNotes, SumatraPdf,
                          UTorrent)
from repro.benign.base import temp_save_dance
from repro.core import CryptoDropMonitor
from repro.corpus.content import make_docx
from repro.fs import DOCUMENTS, OperationRecorder, OpKind, \
    VirtualFileSystem
from repro.magic import identify_name
from repro.sandbox import VirtualMachine, run_benign


class TestTempSaveDance:
    @pytest.fixture
    def setup(self):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        pid = vfs.processes.spawn("office.exe").pid
        original = make_docx(random.Random(1), 8000)
        vfs.peek_write(DOCUMENTS / "report.docx", original)
        return vfs, pid, original

    def test_dance_replaces_content_atomically(self, setup):
        vfs, pid, original = setup

        class Ctx:
            def __init__(self, vfs, pid):
                self.vfs, self.pid = vfs, pid

            def write_file(self, path, data, chunk=None):
                self.vfs.write_file(self.pid, path, data, chunk)

            def rename(self, src, dst, overwrite=True):
                self.vfs.rename(self.pid, src, dst, overwrite)

        new_version = original + b"PK_extra"
        temp_save_dance(Ctx(vfs, pid), DOCUMENTS / "report.docx",
                        new_version, random.Random(2))
        assert vfs.peek_read(DOCUMENTS / "report.docx") == new_version
        leftovers = [n for n in vfs.listdir(pid, DOCUMENTS)
                     if n.startswith("~WRL")]
        assert not leftovers

    def test_dance_emits_clobbering_rename(self, setup):
        vfs, pid, original = setup
        recorder = OperationRecorder(kinds={OpKind.RENAME})
        vfs.filters.attach(recorder)

        class Ctx:
            def __init__(self, vfs, pid):
                self.vfs, self.pid = vfs, pid

            def write_file(self, path, data, chunk=None):
                self.vfs.write_file(self.pid, path, data, chunk)

            def rename(self, src, dst, overwrite=True):
                self.vfs.rename(self.pid, src, dst, overwrite)

        temp_save_dance(Ctx(vfs, pid), DOCUMENTS / "report.docx",
                        original + b"x", random.Random(3))
        assert len(recorder.records) == 1
        assert recorder.records[0].dest_path == DOCUMENTS / "report.docx"


class TestScopeDiscipline:
    """Apps whose churn lives outside Documents must be invisible."""

    @pytest.mark.parametrize("app_cls", [Chrome, UTorrent])
    def test_download_traffic_outside_documents(self, machine, app_cls):
        result = run_benign(machine, app_cls(1))
        assert result.completed, result.error
        assert result.final_score == 0.0

    def test_word_saves_leave_valid_docx(self, machine):
        app = MicrosoftWord(7)
        app.prepare(machine)
        monitor = CryptoDropMonitor(machine.vfs).attach()
        outcome = machine.run_program(app)
        assert outcome.completed
        saved = machine.vfs.peek_read(
            machine.docs_root / "New Document.docx")
        assert identify_name(saved) == "docx"
        monitor.detach()
        machine.revert()

    def test_dropbox_sync_rewrites_stay_similar(self, machine):
        result = run_benign(machine, Dropbox(5))
        assert result.completed, result.error
        assert "similarity" not in result.flags
        assert result.final_score < 30

    def test_ccleaner_stays_within_deletion_allowance(self, machine):
        result = run_benign(machine, PiriformCCleaner(3))
        assert result.completed
        assert result.final_score == 0.0

    def test_readonly_consumers_never_tracked(self, machine):
        result = run_benign(machine, SumatraPdf(3))
        assert result.final_score == 0.0

    def test_tag_editor_keeps_similarity(self, machine):
        result = run_benign(machine, MusicBee(3))
        assert result.completed
        assert "similarity" not in result.flags

    def test_note_taking_low_entropy_writes(self, machine):
        result = run_benign(machine, ResophNotes(3))
        assert result.completed
        assert result.final_score <= 15.0


class TestBenignDeterminism:
    def test_same_seed_same_score(self, machine):
        first = run_benign(machine, MicrosoftWord(11))
        second = run_benign(machine, MicrosoftWord(11))
        assert first.final_score == second.final_score
