"""Comparison baselines: signature AV, Tripwire, ablated configs."""

import random

import pytest

from repro.baselines import (MultiEngineAV, SignatureEngine,
                             TripwireMonitor, ablation_suite,
                             entropy_only, mutate_one_byte, no_union)
from repro.crypto import chacha20_xor
from repro.fs import DOCUMENTS, VirtualFileSystem
from repro.ransomware import working_cohort


class TestSignatureEngine:
    def test_hash_engine_exact_match_only(self):
        engine = SignatureEngine("e", style="hash")
        engine.learn(b"MALWARE_BODY" * 10, random.Random(0))
        assert engine.scan(b"MALWARE_BODY" * 10)
        assert not engine.scan(b"MALWARE_BODY" * 10 + b"#")

    def test_pattern_engine_survives_mutation_elsewhere(self):
        engine = SignatureEngine("e", style="pattern")
        image = random.Random(1).randbytes(2048)
        engine.learn(image, random.Random(2))
        assert engine.scan(image + b"APPENDED JUNK")

    def test_pattern_engine_rejects_low_information_slices(self):
        engine = SignatureEngine("e", style="pattern")
        # an image that is mostly zero padding yields no usable pattern
        engine.learn(b"\x00" * 4096, random.Random(3))
        assert not engine.scan(b"\x00" * 4096)

    def test_bad_style_rejected(self):
        with pytest.raises(ValueError):
            SignatureEngine("e", style="vibes")


class TestMultiEngineAV:
    @pytest.fixture(scope="class")
    def trained(self):
        av = MultiEngineAV()
        av.train(working_cohort())
        return av

    def test_panel_size(self, trained):
        assert len(trained.engines) == 57

    def test_known_marker_family_widely_detected(self, trained):
        tesla = next(s for s in working_cohort()
                     if s.profile.family == "teslacrypt")
        assert trained.scan_sample(tesla).count > 20

    def test_scripts_only_seen_by_script_engines(self, trained):
        posh = next(s for s in working_cohort()
                    if s.profile.family == "poshcoder")
        report = trained.scan_sample(posh)
        assert report.count == 8    # §V-E

    def test_one_char_mutation_sheds_hash_engines(self, trained):
        posh = next(s for s in working_cohort()
                    if s.profile.family == "poshcoder")
        before = trained.scan_sample(posh).count
        after = trained.scan(mutate_one_byte(posh.image_bytes),
                             is_script=True).count
        assert before - after == 2    # §V-E: two engines go blind

    def test_benign_bytes_not_flagged(self, trained):
        from repro.corpus.content import make_pdf
        report = trained.scan(make_pdf(random.Random(4), 20000))
        assert report.count == 0

    def test_mutate_in_place(self):
        data = b"hello world"
        out = mutate_one_byte(data, position=0)
        assert len(out) == len(data) and out != data


class TestTripwire:
    @pytest.fixture
    def setup(self):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        pid = vfs.processes.spawn("w.exe").pid
        for i in range(5):
            vfs.write_file(pid, DOCUMENTS / f"f{i}.txt", b"data%d" % i)
        monitor = TripwireMonitor(vfs, DOCUMENTS)
        monitor.initialize()
        return vfs, pid, monitor

    def test_clean_check_is_silent(self, setup):
        vfs, pid, monitor = setup
        assert monitor.check() == []

    def test_detects_modification_only_at_next_check(self, setup):
        """No early warning: damage is complete before the alert."""
        vfs, pid, monitor = setup
        for i in range(5):
            vfs.write_file(pid, DOCUMENTS / f"f{i}.txt",
                           chacha20_xor(bytes(32), bytes(12), b"data%d" % i))
        # all five files are already lost when the monitor notices
        alerts = monitor.check()
        assert len(alerts) == 5

    def test_benign_save_raises_same_alert(self, setup):
        """The noise problem (§II): legitimate edits are indistinguishable."""
        vfs, pid, monitor = setup
        vfs.write_file(pid, DOCUMENTS / "f0.txt", b"user edited this")
        alerts = monitor.check()
        assert len(alerts) == 1 and alerts[0].kind == "modified"

    def test_detects_missing_and_new(self, setup):
        vfs, pid, monitor = setup
        vfs.delete(pid, DOCUMENTS / "f1.txt")
        vfs.write_file(pid, DOCUMENTS / "note.txt", b"pay")
        kinds = {a.kind for a in monitor.check()}
        assert kinds == {"missing", "new"}

    def test_check_before_initialize_raises(self):
        vfs = VirtualFileSystem()
        vfs._ensure_dirs(DOCUMENTS)
        with pytest.raises(RuntimeError):
            TripwireMonitor(vfs, DOCUMENTS).check()


class TestAblationConfigs:
    def test_suite_contains_expected_variants(self):
        suite = ablation_suite()
        assert set(suite) == {"full", "entropy_only", "type_change_only",
                              "similarity_only", "secondary_only",
                              "no_union", "ctph_backend"}

    def test_entropy_only_disables_others(self):
        config = entropy_only()
        assert config.enable_entropy
        assert not config.enable_similarity
        assert not config.enable_union
        assert config.indicators_enabled() == ["entropy"]

    def test_no_union_keeps_indicators(self):
        config = no_union()
        assert len(config.indicators_enabled()) == 5
        assert not config.enable_union

    def test_ctph_backend_setting(self):
        assert ablation_suite()["ctph_backend"].similarity_backend == "ctph"
