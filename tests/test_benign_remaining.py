"""Spot checks on the benign apps not covered in depth elsewhere —
each app's *distinctive* filesystem habit, asserted directly."""

import pytest

from repro.fs import APPDATA, OpKind, OperationRecorder
from repro.sandbox import VirtualMachine, run_benign


@pytest.fixture
def traced_machine(small_corpus):
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    recorder = OperationRecorder()
    machine.vfs.filters.attach(recorder)
    yield machine, recorder
    machine.vfs.filters.detach(recorder)
    machine.revert()


def _run(machine, app):
    from repro.core import CryptoDropMonitor
    monitor = CryptoDropMonitor(machine.vfs).attach()
    outcome = machine.run_program(app)
    monitor.detach()
    return outcome


class TestDistinctiveHabits:
    def test_avast_reads_broadly_writes_nothing_protected(self,
                                                          traced_machine):
        from repro.benign import AvastAntiVirus
        machine, recorder = traced_machine
        app = AvastAntiVirus(1)
        app.prepare(machine)
        assert _run(machine, app).completed
        docs = machine.docs_root
        writes = [r for r in recorder.records
                  if r.kind is OpKind.WRITE and r.path.is_within(docs)]
        reads = [r for r in recorder.records
                 if r.kind is OpKind.READ and r.path.is_within(docs)]
        assert not writes and len(reads) > 100

    def test_launchy_lists_but_never_opens(self, traced_machine):
        from repro.benign import Launchy
        machine, recorder = traced_machine
        app = Launchy(1)
        app.prepare(machine)
        assert _run(machine, app).completed
        docs = machine.docs_root
        opens = [r for r in recorder.records
                 if r.kind in (OpKind.OPEN, OpKind.READ)
                 and r.path.is_within(docs)]
        lists = [r for r in recorder.records
                 if r.kind is OpKind.LIST_DIR and r.path.is_within(docs)]
        assert not opens and lists

    def test_chrome_download_uses_partial_then_rename(self,
                                                      traced_machine):
        from repro.benign import Chrome
        machine, recorder = traced_machine
        assert _run(machine, Chrome(1)).completed
        renames = [r for r in recorder.records
                   if r.kind is OpKind.RENAME
                   and str(r.path).endswith(".crdownload")]
        assert len(renames) == 2

    def test_spotify_confined_to_appdata(self, traced_machine):
        from repro.benign import Spotify
        machine, recorder = traced_machine
        assert _run(machine, Spotify(1)).completed
        docs = machine.docs_root
        touching = [r for r in recorder.records
                    if r.kind in (OpKind.WRITE, OpKind.CREATE)
                    and r.path.is_within(docs)]
        assert not touching
        appdata_writes = [r for r in recorder.records
                          if r.kind is OpKind.WRITE
                          and r.path.is_within(APPDATA)]
        assert appdata_writes

    def test_pidgin_appends_rather_than_rewrites(self, traced_machine):
        from repro.benign import Pidgin
        machine, recorder = traced_machine
        assert _run(machine, Pidgin(1)).completed
        log_writes = [r for r in recorder.records
                      if r.kind is OpKind.WRITE
                      and str(r.path).endswith(".txt")]
        # appends land at increasing offsets on one file
        offsets = [r.size for r in log_writes]
        assert len(log_writes) >= 20

    def test_itunes_converts_lossless_only(self, traced_machine):
        from repro.benign import ITunes
        machine, recorder = traced_machine
        app = ITunes(1)
        app.prepare(machine)
        assert _run(machine, app).completed
        created = [r for r in recorder.records
                   if r.kind is OpKind.CREATE
                   and r.path.suffix == ".m4a"]
        # 15 wav + 10 flac in the planted library
        assert len(created) == 25

    def test_sevenzip_emits_solid_64k_blocks(self, traced_machine):
        from repro.benign import SevenZip
        machine, recorder = traced_machine
        outcome = _run(machine, SevenZip(1))
        assert outcome.suspended   # the expected detection
        archive_writes = [r for r in recorder.records
                          if r.kind is OpKind.WRITE
                          and str(r.path).endswith(".7z")]
        assert any(r.size == 65536 for r in archive_writes)

    def test_ccleaner_deletes_only_tmp_files(self, traced_machine):
        from repro.benign import PiriformCCleaner
        machine, recorder = traced_machine
        app = PiriformCCleaner(1)
        app.prepare(machine)
        assert _run(machine, app).completed
        deletes = [r for r in recorder.records
                   if r.kind is OpKind.DELETE]
        assert deletes
        assert all(str(r.path).endswith(".tmp") for r in deletes)
