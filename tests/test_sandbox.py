"""Sandbox machinery: VM lifecycle, sample runner, campaigns, culling."""

import pytest

from repro.ransomware import RansomwareSample, SampleProfile, working_cohort
from repro.sandbox import (VirtualMachine, cull_haul, run_campaign,
                           run_sample)


def _sample(seed=1, **overrides):
    options = dict(family="testfam", variant=0, behavior_class="A",
                   seed=seed, extensions=(".txt",), rename_suffix=None,
                   note_mode="none")
    options.update(overrides)
    return RansomwareSample(SampleProfile(**options))


class TestVirtualMachine:
    def test_revert_requires_snapshot(self, small_corpus):
        machine = VirtualMachine(small_corpus)
        with pytest.raises(RuntimeError):
            machine.revert()

    def test_assess_requires_snapshot(self, small_corpus):
        machine = VirtualMachine(small_corpus)
        with pytest.raises(RuntimeError):
            machine.assess()

    def test_run_program_reports_outcome(self, machine):
        outcome = machine.run_program(_sample(max_files=2))
        assert outcome.completed and not outcome.suspended
        assert outcome.sim_seconds > 0

    def test_run_program_captures_workload_errors(self, machine):
        class Buggy:
            name = "buggy.exe"
            seed = 0

            def run(self, ctx):
                raise KeyError("oops")

        outcome = machine.run_program(Buggy())
        assert outcome.error == "KeyError: 'oops'"
        assert not outcome.completed

    def test_context_spawn_child(self, machine):
        class Forker:
            name = "forker.exe"
            seed = 0

            def run(self, ctx):
                child = ctx.spawn_child("drone.exe")
                assert child.pid != ctx.pid
                child.write_file(ctx.temp_root / "c.txt", b"hi")

        assert machine.run_program(Forker()).completed


class TestRunSample:
    def test_detected_sample_reports_damage(self, machine):
        sample = next(s for s in working_cohort()
                      if s.profile.family == "teslacrypt")
        result = run_sample(machine, sample)
        assert result.detected and result.suspended
        assert 0 < result.files_lost <= 40
        assert result.family == "teslacrypt"

    def test_machine_pristine_after_run(self, machine):
        sample = next(s for s in working_cohort()
                      if s.profile.family == "xorist")
        run_sample(machine, sample)
        assert machine.assess().files_lost == 0

    def test_inert_sample_reports_clean(self, machine):
        inert = RansomwareSample(SampleProfile(
            "vt-unlabeled", 0, "A", seed=5, inert_reason="c2_dead"))
        result = run_sample(machine, inert)
        assert result.inert and not result.detected
        assert result.files_lost == 0

    def test_record_ops_collects_dirs_and_exts(self, machine):
        sample = next(s for s in working_cohort()
                      if s.profile.family == "teslacrypt")
        result = run_sample(machine, sample, record_ops=True)
        assert result.touched_dirs
        assert any(e.startswith(".") for e in result.extensions_accessed)

    def test_fresh_detector_per_run(self, machine):
        """Scores must not leak across revert cycles."""
        sample_a = _sample(seed=10, max_files=3)
        first = run_sample(machine, sample_a)
        sample_b = _sample(seed=10, max_files=3)
        second = run_sample(machine, sample_b)
        assert first.score == second.score
        assert first.files_lost == second.files_lost


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, small_corpus):
        cohort = working_cohort()
        samples = ([s for s in cohort if s.profile.family == "xorist"][:4]
                   + [s for s in cohort
                      if s.profile.family == "cryptodefense"][:4])
        return run_campaign(samples, small_corpus)

    def test_all_detected(self, campaign):
        assert campaign.detection_rate == 1.0

    def test_aggregates(self, campaign):
        assert campaign.median_files_lost > 0
        assert campaign.max_files_lost >= campaign.min_files_lost
        assert 0.0 <= campaign.union_rate <= 1.0

    def test_family_grouping(self, campaign):
        families = campaign.by_family()
        assert set(families) == {"xorist", "cryptodefense"}
        medians = campaign.family_medians()
        assert set(medians) == set(families)

    def test_cdf_monotone_and_complete(self, campaign):
        points = campaign.cumulative_distribution()
        fractions = [frac for _lost, frac in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_class_counts(self, campaign):
        counts = campaign.class_counts()
        assert sum(counts.values()) == 8


class TestCulling:
    def test_haul_splits_working_from_inert(self, small_corpus):
        from repro.ransomware.factory import _inert_samples
        working = [s for s in working_cohort()
                   if s.profile.family == "xorist"][:3]
        inert = _inert_samples(0)[:5]
        kept, culled, campaign = cull_haul(working + inert, small_corpus)
        assert {s.name for s, _ in kept} == {s.name for s in working}
        assert len(culled) == 5


class TestParallelCampaign:
    def test_parallel_matches_serial_exactly(self, small_corpus):
        from repro.ransomware import instantiate
        from repro.sandbox import run_campaign_parallel
        cohort = working_cohort()
        subset = [s for s in cohort if s.profile.family == "xorist"][:4]
        serial = run_campaign([instantiate(s.profile) for s in subset],
                              small_corpus)
        parallel = run_campaign_parallel(subset, small_corpus, workers=2)
        key = lambda r: (r.sample_name, r.files_lost, r.score,
                         r.union_fired, sorted(r.flags))
        assert [key(r) for r in serial.results] == \
            [key(r) for r in parallel.results]

    def test_single_worker_falls_back_to_serial(self, small_corpus):
        from repro.sandbox import run_campaign_parallel
        subset = [s for s in working_cohort()
                  if s.profile.family == "xorist"][:2]
        campaign = run_campaign_parallel(subset, small_corpus, workers=1)
        assert campaign.detection_rate == 1.0

    def test_result_order_preserved(self, small_corpus):
        from repro.sandbox import run_campaign_parallel
        subset = [s for s in working_cohort()
                  if s.profile.family in ("xorist", "teslacrypt")][:6]
        campaign = run_campaign_parallel(subset, small_corpus, workers=2)
        assert [r.sample_name for r in campaign.results] == \
            [s.profile.sample_name for s in subset]
