"""Threshold trade-off behaviour (the dial Fig. 6 turns).

The non-union threshold trades detection speed against benign noise.
These tests pin the monotonic structure of that trade using trajectory
replay — the same mechanism the Fig. 6 sweep uses — plus live runs at
contrasting thresholds.
"""

import pytest

from repro.core import CryptoDropMonitor, default_config
from repro.ransomware import cohort_by_family, instantiate
from repro.sandbox import VirtualMachine, run_benign, run_sample


class TestMalwareSide:
    @pytest.mark.parametrize("threshold,slower_threshold", [(120, 240)])
    def test_lower_threshold_loses_fewer_files(self, machine, threshold,
                                               slower_threshold):
        profile = cohort_by_family()["teslacrypt"][0].profile
        fast = run_sample(machine, instantiate(profile),
                          default_config(non_union_threshold=threshold,
                                         union_threshold=threshold))
        slow = run_sample(machine, instantiate(profile),
                          default_config(non_union_threshold=slower_threshold,
                                         union_threshold=slower_threshold))
        assert fast.detected and slow.detected
        assert fast.files_lost < slow.files_lost

    def test_replay_crossings_monotone_in_threshold(self, machine):
        """For one recorded trajectory, the first-crossing time can only
        move later as the threshold rises."""
        profile = cohort_by_family()["filecoder"][0].profile
        monitor = CryptoDropMonitor(
            machine.vfs, default_config(non_union_threshold=10 ** 9,
                                        union_threshold=10 ** 9))
        monitor.attach()
        machine.run_program(instantiate(profile))
        row = monitor.score_rows()[0]
        monitor.detach()
        machine.revert()
        crossings = []
        for threshold in (50, 100, 150, 200, 300):
            at = row.first_crossing(threshold, with_union=False)
            crossings.append((threshold, at))
        times = [at for _t, at in crossings if at is not None]
        assert times == sorted(times)
        # and a threshold above the final score is never crossed
        assert row.first_crossing(row.score * 2, with_union=False) is None


class TestBenignSide:
    def test_aggressive_threshold_flags_excel(self, machine):
        """Fig. 6's cautionary tale: drop the threshold to 100 and the
        highest-scoring benign app becomes a false positive."""
        from repro.benign import MicrosoftExcel
        aggressive = default_config(non_union_threshold=100.0,
                                    union_threshold=100.0)
        result = run_benign(machine, MicrosoftExcel(42), aggressive)
        assert result.detected          # false positive, by construction

    def test_paper_threshold_spares_excel(self, machine):
        from repro.benign import MicrosoftExcel
        result = run_benign(machine, MicrosoftExcel(42))
        assert not result.detected

    def test_word_clean_even_at_tiny_threshold(self, machine):
        """A zero-scoring workload has no crossing at any threshold."""
        from repro.benign import MicrosoftWord
        paranoid = default_config(non_union_threshold=5.0,
                                  union_threshold=5.0)
        result = run_benign(machine, MicrosoftWord(42), paranoid)
        assert not result.detected
        assert result.final_score == 0.0
