"""Shared fixtures.

Corpus generation is the expensive part of most integration tests, so a
small corpus and a prepared machine are session-scoped; tests that mutate
machine state must revert (the ``machine`` fixture hands out a
freshly-reverted one each time).
"""

from __future__ import annotations

import pytest

from repro.corpus import generate
from repro.fs import DOCUMENTS, VirtualFileSystem
from repro.sandbox import VirtualMachine

TEST_CORPUS_SEED = 1337
TEST_CORPUS_FILES = 420
TEST_CORPUS_DIRS = 36


@pytest.fixture(scope="session")
def small_corpus():
    return generate(TEST_CORPUS_SEED, TEST_CORPUS_FILES, TEST_CORPUS_DIRS)


@pytest.fixture(scope="session")
def _machine_session(small_corpus):
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    return machine


@pytest.fixture
def machine(_machine_session):
    """A machine in pristine (snapshot) state; reverted after each test."""
    yield _machine_session
    _machine_session.revert()


@pytest.fixture
def vfs():
    """An empty filesystem with the documents tree created."""
    fs = VirtualFileSystem()
    fs._ensure_dirs(DOCUMENTS)
    return fs


@pytest.fixture
def pid(vfs):
    """A running process on the empty filesystem."""
    return vfs.processes.spawn("test.exe").pid
