"""Shared fixtures.

Corpus generation is the expensive part of most integration tests, so a
small corpus and a prepared machine are session-scoped; tests that mutate
machine state must revert (the ``machine`` fixture hands out a
freshly-reverted one each time).
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.corpus import generate
from repro.fs import DOCUMENTS, VirtualFileSystem
from repro.sandbox import VirtualMachine

TEST_CORPUS_SEED = 1337
TEST_CORPUS_FILES = 420
TEST_CORPUS_DIRS = 36

#: global per-test wall-clock limit — a wedged test (a lost worker, a
#: dispatch loop that never drains) fails loudly instead of hanging the
#: whole tier-1 run.  Generous on purpose: the slowest legitimate test
#: (an evasion sweep) runs for minutes under full-suite load.  Override
#: per test with @pytest.mark.timeout(N) or globally with
#: REPRO_TEST_TIMEOUT (0 disables).
PER_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    limit = float(marker.args[0]) if marker and marker.args \
        else PER_TEST_TIMEOUT_S
    if limit <= 0 or not hasattr(signal, "SIGALRM"):
        yield  # platform without SIGALRM (or limit disabled): no fence
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:g}s per-test wall-clock limit")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_corpus():
    return generate(TEST_CORPUS_SEED, TEST_CORPUS_FILES, TEST_CORPUS_DIRS)


@pytest.fixture(scope="session")
def _machine_session(small_corpus):
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    return machine


@pytest.fixture
def machine(_machine_session):
    """A machine in pristine (snapshot) state; reverted after each test."""
    yield _machine_session
    _machine_session.revert()


@pytest.fixture
def vfs():
    """An empty filesystem with the documents tree created."""
    fs = VirtualFileSystem()
    fs._ensure_dirs(DOCUMENTS)
    return fs


@pytest.fixture
def pid(vfs):
    """A running process on the empty filesystem."""
    return vfs.processes.spawn("test.exe").pid
