"""Golden regression pins.

Every run of this reproduction is deterministic given its seeds, so the
first sample of each family against the shared test corpus has an *exact*
expected outcome.  These pins guard the calibration: any change to the
indicators, scoring constants, corpus generators, similarity digests, or
family behaviours that shifts detection timing shows up here immediately
— deliberately brittle, by design.

If you intentionally recalibrate, regenerate the table with::

    python - <<'PY'
    from repro.corpus import generate
    from repro.ransomware import cohort_by_family, instantiate
    from repro.sandbox import VirtualMachine, run_sample
    m = VirtualMachine(generate(1337, 420, 36)); m.snapshot()
    for fam, rows in sorted(cohort_by_family().items()):
        r = run_sample(m, instantiate(rows[0].profile))
        print((fam, r.files_lost, r.score, r.union_fired))
    PY
"""

import pytest

from repro.ransomware import cohort_by_family, instantiate
from repro.sandbox import run_sample

#: (family, files lost, final score, union fired) for each family's first
#: sample against the conftest corpus (seed 1337, 420 files / 36 dirs)
GOLDEN = [
    ("cryptodefense", 9, 200.0, False),
    ("cryptofortress", 10, 181.0, True),
    ("cryptolocker", 9, 181.5, True),
    ("cryptolocker-copycat", 11, 189.5, True),
    ("cryptotorlocker2015", 5, 181.5, True),
    ("cryptowall", 9, 186.5, True),
    ("ctb-locker", 12, 190.0, True),
    ("filecoder", 11, 188.5, True),
    ("gpcode", 24, 201.5, False),
    ("mbladvisory", 8, 180.0, True),
    ("poshcoder", 10, 180.5, True),
    ("ransom-fue", 19, 203.0, False),
    ("teslacrypt", 10, 187.5, True),
    ("virlock", 9, 180.0, True),
    ("xorist", 3, 182.0, True),
]


@pytest.mark.parametrize("family,files_lost,score,union", GOLDEN,
                         ids=[row[0] for row in GOLDEN])
def test_family_first_sample_outcome_pinned(machine, family, files_lost,
                                            score, union):
    sample = instantiate(cohort_by_family()[family][0].profile)
    result = run_sample(machine, sample)
    assert result.detected
    assert result.files_lost == files_lost
    assert result.score == score
    assert result.union_fired == union


def test_corpus_fingerprint_pinned(small_corpus):
    """The test corpus itself must not drift (generators are part of the
    calibrated surface)."""
    import hashlib
    digest = hashlib.sha256()
    for row in small_corpus.files:
        digest.update(row.rel_path.encode())
        digest.update(small_corpus.contents[row.rel_path])
    fingerprint = digest.hexdigest()
    # pin only a prefix so the assertion message stays readable
    assert fingerprint.startswith(FINGERPRINT_PREFIX), fingerprint


# regenerate with: the docstring recipe above, then hash as in the test
FINGERPRINT_PREFIX = "64b5f17e83fa7a67"
