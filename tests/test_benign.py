"""Benign application suite vs CryptoDrop (§V-F)."""

import pytest

from repro.benign import (ALL_APP_CLASSES, AdobeLightroom, ITunes,
                          ImageMagickMogrify, MicrosoftExcel,
                          MicrosoftWord, SevenZip, all_apps)
from repro.sandbox import VirtualMachine, run_benign


@pytest.fixture(scope="module")
def bench(small_corpus):
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    return machine


def _run(bench, app_cls, seed=42):
    return run_benign(bench, app_cls(seed))


class TestSuiteComposition:
    def test_thirty_applications(self):
        assert len(ALL_APP_CLASSES) == 30

    def test_all_apps_instantiates(self):
        apps = all_apps(seed=7)
        assert len(apps) == 30
        assert len({type(a) for a in apps}) == 30


class TestAnalysedFive:
    """The §V-F deep-dive applications and their signature outcomes."""

    def test_word_scores_zero(self, bench):
        result = _run(bench, MicrosoftWord)
        assert result.completed, result.error
        assert result.final_score == 0.0
        assert not result.detected

    def test_imagemagick_scores_zero(self, bench):
        result = _run(bench, ImageMagickMogrify)
        assert result.completed, result.error
        assert result.final_score == 0.0

    def test_excel_scores_high_but_survives(self, bench):
        result = _run(bench, MicrosoftExcel)
        assert result.completed, result.error
        assert 40.0 <= result.final_score < 200.0
        assert not result.detected

    def test_lightroom_scores_moderate(self, bench):
        result = _run(bench, AdobeLightroom)
        assert result.completed, result.error
        assert 30.0 <= result.final_score < 200.0
        assert not result.detected

    def test_itunes_scores_low(self, bench):
        result = _run(bench, ITunes)
        assert result.completed, result.error
        assert result.final_score < 60.0
        assert not result.detected

    def test_no_benign_app_reaches_union(self, bench):
        """§III-E: 'none of the benign programs we tested triggered all
        three of our primary ransomware indicators'."""
        for cls in (MicrosoftWord, MicrosoftExcel, ImageMagickMogrify,
                    AdobeLightroom, ITunes):
            assert not _run(bench, cls).union_fired, cls.__name__


class TestSevenZip:
    def test_archiving_documents_is_flagged(self, bench):
        """The paper's one benign detection — 'normal, expected,
        desirable'."""
        result = _run(bench, SevenZip)
        assert result.detected
        assert result.suspended

    def test_7zip_not_via_union(self, bench):
        result = _run(bench, SevenZip)
        assert not result.union_fired


class TestWholeSuite:
    @pytest.mark.parametrize("app_cls", ALL_APP_CLASSES,
                             ids=lambda c: c.__name__)
    def test_runs_clean(self, bench, app_cls):
        """Every app either completes silently, or is 7-zip."""
        result = _run(bench, app_cls)
        assert result.error is None, result.error
        if app_cls is SevenZip:
            assert result.detected
        else:
            assert result.completed
            assert not result.detected, (app_cls.__name__,
                                         result.final_score)

    def test_trajectory_replays_final_score(self, bench):
        result = _run(bench, MicrosoftExcel)
        if result.trajectory:
            assert result.trajectory[-1][1] == result.final_score
        assert result.score_at_threshold(result.final_score) or \
            not result.trajectory
