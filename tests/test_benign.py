"""Benign application suite vs CryptoDrop (§V-F)."""

import pytest

from repro.benign import (ALL_APP_CLASSES, AdobeLightroom, ITunes,
                          ImageMagickMogrify, MicrosoftExcel,
                          MicrosoftWord, SevenZip, all_apps)
from repro.sandbox import VirtualMachine, run_benign


@pytest.fixture(scope="module")
def bench(small_corpus):
    machine = VirtualMachine(small_corpus)
    machine.snapshot()
    return machine


def _run(bench, app_cls, seed=42):
    return run_benign(bench, app_cls(seed))


class TestSuiteComposition:
    def test_thirty_applications(self):
        assert len(ALL_APP_CLASSES) == 30

    def test_all_apps_instantiates(self):
        apps = all_apps(seed=7)
        assert len(apps) == 30
        assert len({type(a) for a in apps}) == 30


class TestAnalysedFive:
    """The §V-F deep-dive applications and their signature outcomes."""

    def test_word_scores_zero(self, bench):
        result = _run(bench, MicrosoftWord)
        assert result.completed, result.error
        assert result.final_score == 0.0
        assert not result.detected

    def test_imagemagick_scores_zero(self, bench):
        result = _run(bench, ImageMagickMogrify)
        assert result.completed, result.error
        assert result.final_score == 0.0

    def test_excel_scores_high_but_survives(self, bench):
        result = _run(bench, MicrosoftExcel)
        assert result.completed, result.error
        assert 40.0 <= result.final_score < 200.0
        assert not result.detected

    def test_lightroom_scores_moderate(self, bench):
        result = _run(bench, AdobeLightroom)
        assert result.completed, result.error
        assert 30.0 <= result.final_score < 200.0
        assert not result.detected

    def test_itunes_scores_low(self, bench):
        result = _run(bench, ITunes)
        assert result.completed, result.error
        assert result.final_score < 60.0
        assert not result.detected

    def test_no_benign_app_reaches_union(self, bench):
        """§III-E: 'none of the benign programs we tested triggered all
        three of our primary ransomware indicators'."""
        for cls in (MicrosoftWord, MicrosoftExcel, ImageMagickMogrify,
                    AdobeLightroom, ITunes):
            assert not _run(bench, cls).union_fired, cls.__name__


class TestSevenZip:
    def test_archiving_documents_is_flagged(self, bench):
        """The paper's one benign detection — 'normal, expected,
        desirable'."""
        result = _run(bench, SevenZip)
        assert result.detected
        assert result.suspended

    def test_7zip_not_via_union(self, bench):
        result = _run(bench, SevenZip)
        assert not result.union_fired


class TestWholeSuite:
    @pytest.mark.parametrize("app_cls", ALL_APP_CLASSES,
                             ids=lambda c: c.__name__)
    def test_runs_clean(self, bench, app_cls):
        """Every app either completes silently, or is 7-zip."""
        result = _run(bench, app_cls)
        assert result.error is None, result.error
        if app_cls is SevenZip:
            assert result.detected
        else:
            assert result.completed
            assert not result.detected, (app_cls.__name__,
                                         result.final_score)

    def test_trajectory_replays_final_score(self, bench):
        result = _run(bench, MicrosoftExcel)
        if result.trajectory:
            assert result.trajectory[-1][1] == result.final_score
        assert result.score_at_threshold(result.final_score) or \
            not result.trajectory


class TestScoreAtThresholdUnionCrossing:
    """Regression: a union event drops the *effective* threshold mid-run,
    so a sweep threshold above the peak score can still be a detection if
    the union threshold was crossed after the union fired (§V-B2)."""

    def _result(self, trajectory, union_threshold=180.0):
        from repro.sandbox import BenignResult
        return BenignResult(
            app_name="synthetic", final_score=trajectory[-1][1],
            detected=False, suspended=False, union_fired=True,
            completed=True, trajectory=trajectory,
            union_threshold=union_threshold)

    def test_union_crossing_counts_at_high_sweep_threshold(self):
        result = self._result([(1, 50.0, "entropy"),
                               (2, 120.0, "union"),
                               (3, 185.0, "type_change")])
        # peak score 185 < 200, but union dropped the bar to 180
        assert result.score_at_threshold(200.0)

    def test_pre_union_scores_do_not_use_union_bar(self):
        result = self._result([(1, 185.0, "entropy"),
                               (2, 190.0, "union")])
        # 185 predates the union event; at the union moment the score is
        # 190 >= 180, so this IS flagged — but only from the event on
        assert result.score_at_threshold(200.0)
        result = self._result([(1, 179.0, "entropy"),
                               (2, 179.5, "union")])
        assert not result.score_at_threshold(200.0)

    def test_no_union_event_keeps_plain_threshold(self):
        result = self._result([(1, 185.0, "entropy"),
                               (2, 190.0, "similarity")])
        assert not result.score_at_threshold(200.0)
        assert result.score_at_threshold(190.0)

    def test_union_disabled_run_ignores_crossings(self):
        result = self._result([(1, 120.0, "union"),
                               (2, 185.0, "entropy")],
                              union_threshold=None)
        assert not result.score_at_threshold(200.0)

    def test_explicit_override_beats_recorded_threshold(self):
        result = self._result([(1, 120.0, "union"),
                               (2, 150.0, "entropy")])
        assert not result.score_at_threshold(200.0)
        assert result.score_at_threshold(200.0, union_threshold=150.0)

    def test_legacy_two_tuple_trajectories_still_work(self):
        from repro.sandbox import BenignResult
        result = BenignResult(
            app_name="legacy", final_score=210.0, detected=True,
            suspended=False, union_fired=False, completed=True,
            trajectory=[(1, 100.0), (2, 210.0)])
        assert result.score_at_threshold(200.0)
        assert not result.score_at_threshold(211.0)
