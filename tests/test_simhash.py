"""Similarity digests: sdhash-style and CTPH."""

import random
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.wordlists import paragraphs
from repro.simhash import (BloomFilter, MIN_DIGEST_BYTES, compare,
                           compare_bytes, compare_signatures, ctph, sdhash)


def _text(seed, approx=16000):
    return paragraphs(random.Random(seed), approx).encode()


class TestBloomFilter:
    def test_add_and_contains(self):
        filt = BloomFilter()
        feature = b"\x42" * 20
        filt.add(feature)
        assert filt.contains(feature)

    def test_absent_feature_unlikely_contained(self):
        filt = BloomFilter()
        filt.add(b"\x01" * 20)
        assert not filt.contains(b"\xfe" * 20)

    def test_popcount_grows(self):
        filt = BloomFilter()
        before = filt.popcount()
        filt.add(b"\x99" * 20)
        assert filt.popcount() > before

    def test_full_after_capacity(self):
        from repro.simhash import MAX_FEATURES
        filt = BloomFilter()
        rng = random.Random(0)
        for _ in range(MAX_FEATURES):
            filt.add(rng.randbytes(20))
        assert filt.full

    def test_identical_filters_similarity_one(self):
        rng = random.Random(1)
        features = [rng.randbytes(20) for _ in range(60)]
        a = BloomFilter.from_features(features)
        b = BloomFilter.from_features(features)
        assert a.similarity(b) == pytest.approx(1.0)

    def test_disjoint_filters_similarity_near_zero(self):
        rng = random.Random(2)
        a = BloomFilter.from_features(rng.randbytes(20) for _ in range(60))
        b = BloomFilter.from_features(rng.randbytes(20) for _ in range(60))
        assert a.similarity(b) < 0.25

    def test_empty_filter_similarity_zero(self):
        assert BloomFilter().similarity(BloomFilter()) == 0.0


class TestSdhashProperties:
    def test_self_similarity_is_100(self):
        digest = sdhash(_text(1))
        assert compare(digest, digest) == 100

    def test_small_edit_keeps_high_score(self):
        data = bytearray(_text(2))
        data[500:540] = b"X" * 40
        assert compare_bytes(_text(2), bytes(data)) >= 90

    def test_ciphertext_scores_near_zero(self):
        """§III-B: encrypted output must not match its plaintext."""
        plain = _text(3)
        cipher = random.Random(3).randbytes(len(plain))
        assert compare_bytes(plain, cipher) <= 5

    def test_two_random_blobs_near_zero(self):
        rng = random.Random(4)
        assert compare_bytes(rng.randbytes(9000), rng.randbytes(9000)) <= 5

    def test_small_files_yield_no_digest(self):
        """§V-C: files under 512 bytes cannot be scored."""
        assert sdhash(b"A tiny note." * 10) is None
        assert len(b"A tiny note." * 10) < MIN_DIGEST_BYTES

    def test_512_byte_text_file_digests(self):
        data = _text(5)[:700]
        assert sdhash(data) is not None

    def test_compare_with_missing_digest_is_none(self):
        assert compare(None, sdhash(_text(6))) is None
        assert compare(sdhash(_text(6)), None) is None

    def test_shift_invariance(self):
        """A shared byte run must match regardless of its offset —
        the property that keeps benign container saves above the
        ciphertext floor."""
        shared = _text(7, 12000)
        a = b"HEADER-A" + shared
        b = b"A-COMPLETELY-DIFFERENT-PREFIX!!" + shared
        assert compare_bytes(a, b) >= 50

    def test_shared_zip_members_score_positive(self):
        common = zlib.compress(_text(8))
        doc1 = common + zlib.compress(b"unique one" * 200)
        doc2 = common + zlib.compress(b"other half" * 210)
        assert compare_bytes(doc1, doc2) > 5

    def test_score_symmetric(self):
        a, b = sdhash(_text(9)), sdhash(_text(10))
        assert compare(a, b) == compare(b, a)

    def test_digest_deterministic(self):
        assert sdhash(_text(11)).hexdigest() == sdhash(_text(11)).hexdigest()

    def test_large_input_chains_filters(self):
        big = _text(12, 300000)
        digest = sdhash(big)
        assert len(digest) > 1
        assert compare(digest, digest) == 100

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10000))
    def test_plain_vs_cipher_always_separable(self, seed):
        rng = random.Random(seed)
        plain = paragraphs(rng, 4000).encode()
        cipher = rng.randbytes(len(plain))
        score = compare_bytes(plain, cipher)
        assert score is None or score <= 10

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=2048, max_size=8192))
    def test_score_range(self, data):
        other = bytes(reversed(data))
        score = compare_bytes(data, other)
        assert score is None or 0 <= score <= 100


class TestCtph:
    def test_self_match_100(self):
        sig = ctph(_text(20))
        assert compare_signatures(sig, sig) == 100

    def test_edit_keeps_match(self):
        data = bytearray(_text(21))
        data[100:110] = b"0123456789"
        score = compare_signatures(ctph(_text(21)), ctph(bytes(data)))
        assert score >= 60

    def test_cipher_no_match(self):
        plain = _text(22)
        cipher = random.Random(22).randbytes(len(plain))
        assert compare_signatures(ctph(plain), ctph(cipher)) <= 5

    def test_tiny_input_none(self):
        assert ctph(b"short") is None

    def test_signature_string_format(self):
        sig = ctph(_text(23))
        blocksize, s1, s2 = str(sig).split(":")
        assert int(blocksize) >= 3
        assert s1 and s2

    def test_mismatched_blocksizes_score_zero(self):
        small = ctph(_text(24, 1000))
        huge = ctph(_text(25, 600000))
        assert compare_signatures(small, huge) == 0

    def test_signature_equality(self):
        assert ctph(_text(26)) == ctph(_text(26))
