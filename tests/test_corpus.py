"""Synthetic corpus: composition, realism, determinism."""

import random

import pytest

from repro.corpus import (GeneratedCorpus, build_tree, content,
                          default_spec, generate)
from repro.entropy import shannon_entropy
from repro.magic import identify_name


class TestTree:
    def test_exact_directory_count(self):
        assert len(build_tree(1, 511)) == 511

    def test_root_included(self):
        assert () in build_tree(2, 50)

    def test_deterministic(self):
        assert build_tree(3, 100) == build_tree(3, 100)

    def test_no_sibling_name_collisions(self):
        dirs = build_tree(4, 200)
        seen = set()
        for d in dirs:
            key = tuple(p.lower() for p in d)
            assert key not in seen
            seen.add(key)

    def test_nesting_exists(self):
        dirs = build_tree(5, 150)
        assert max(len(d) for d in dirs) >= 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            build_tree(6, 0)


class TestSpec:
    def test_fractions_sum_to_one(self):
        total = sum(t.fraction for t in default_spec().types)
        assert total == pytest.approx(1.0, abs=0.005)

    def test_counts_sum_exactly(self):
        spec = default_spec()
        counts = spec.counts(5099)
        assert sum(counts.values()) == 5099

    def test_counts_deterministic(self):
        spec = default_spec()
        assert spec.counts(1234) == spec.counts(1234)

    def test_size_draws_respect_bounds(self):
        spec = default_spec().by_name("txt")
        rng = random.Random(0)
        for _ in range(500):
            size = spec.draw_size(rng)
            assert spec.min_bytes <= size <= spec.max_bytes

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            default_spec().by_name("wad")


class TestGeneratedCorpus:
    def test_file_count(self, small_corpus):
        assert len(small_corpus.files) == 420

    def test_every_file_has_content(self, small_corpus):
        for row in small_corpus.files:
            assert small_corpus.contents[row.rel_path]
            assert row.size == len(small_corpus.contents[row.rel_path])

    def test_magic_agrees_with_manifest(self, small_corpus):
        mismatches = [
            (row.type_name, identify_name(small_corpus.contents[row.rel_path]))
            for row in small_corpus.files
            if identify_name(small_corpus.contents[row.rel_path])
            != row.type_name]
        assert not mismatches

    def test_entropy_profiles_realistic(self, small_corpus):
        by_type = {}
        for row in small_corpus.files:
            by_type.setdefault(row.type_name, []).append(
                shannon_entropy(small_corpus.contents[row.rel_path]))
        means = {t: sum(v) / len(v) for t, v in by_type.items()}
        assert means["txt"] < 5.0            # plain text
        assert means["docx"] > 7.8           # deflated container
        assert 5.8 < means["pdf"] < 7.8      # mixed structure
        assert means["doc"] < 5.0            # legacy OLE2

    def test_deterministic_given_seed(self):
        a = generate(77, 60, 8, use_cache=False)
        b = generate(77, 60, 8, use_cache=False)
        assert [f.rel_path for f in a.files] == [f.rel_path for f in b.files]
        assert all(a.contents[k] == b.contents[k] for k in a.contents)

    def test_different_seeds_differ(self):
        a = generate(1, 60, 8, use_cache=False)
        b = generate(2, 60, 8, use_cache=False)
        assert [f.rel_path for f in a.files] != [f.rel_path for f in b.files]

    def test_cache_returns_same_object(self):
        assert generate(123, 50, 6) is generate(123, 50, 6)

    def test_small_file_population_exists_at_paper_scale(self):
        corpus = generate()   # full 5,099 / 511 (cached across suite)
        tiny = [f for f in corpus.files
                if f.size < 512 and f.suffix in (".txt", ".md")]
        # the CTB-Locker experiment needs a couple dozen of these
        assert 15 <= len(tiny) <= 45

    def test_paper_scale_dimensions(self):
        corpus = generate()
        assert len(corpus.files) == 5099
        assert len(corpus.dirs) == 511

    def test_some_read_only_files(self, small_corpus):
        assert any(f.read_only for f in small_corpus.files)

    def test_without_small_files(self, small_corpus):
        filtered = small_corpus.without_small_files(512)
        assert all(f.size >= 512 for f in filtered.files)
        assert len(filtered.files) <= len(small_corpus.files)
        assert set(filtered.contents) == {f.rel_path for f in filtered.files}

    def test_files_by_type_accounting(self, small_corpus):
        counts = small_corpus.files_by_type()
        assert sum(counts.values()) == len(small_corpus.files)


class TestMediaTransforms:
    def test_jpeg_reencode_preserves_metadata(self):
        rng = random.Random(9)
        jpg = content.make_jpeg(rng, 20000)
        rotated = content.jpeg_reencode(jpg, variant=90)
        assert identify_name(rotated) == "jpg"
        parts = content.jpeg_parts(jpg)
        parts_rot = content.jpeg_parts(rotated)
        assert parts[0] == parts_rot[0]          # header block identical
        assert jpg != rotated                    # scan replaced

    def test_jpeg_reencode_deterministic(self):
        rng = random.Random(10)
        jpg = content.make_jpeg(rng, 15000)
        assert content.jpeg_reencode(jpg, 1) == content.jpeg_reencode(jpg, 1)

    def test_jpeg_parts_rejects_foreign_data(self):
        assert content.jpeg_parts(b"\xff\xd8\xffnot ours") is None

    def test_wav_seed_extraction(self):
        rng = random.Random(11)
        wav = content.make_wav(rng, 30000)
        assert content.wav_seed(wav) is not None
        assert content.wav_seed(b"RIFF....WAVE") is None

    def test_ooxml_member_roundtrip(self):
        rng = random.Random(12)
        doc = content.make_docx(rng, 9000)
        members = content.ooxml_members(doc)
        rebuilt = content.rebuild_ooxml(members)
        assert content.ooxml_members(rebuilt) == members
        assert identify_name(rebuilt) == "docx"

    def test_plant_and_read_back(self, small_corpus):
        from repro.fs import DOCUMENTS, VirtualFileSystem
        from repro.corpus import plant
        vfs = VirtualFileSystem()
        plant(vfs, small_corpus)
        planted = list(vfs.peek_walk_files(DOCUMENTS))
        assert len(planted) == len(small_corpus.files)


class TestUserProfiles:
    def test_profile_names(self):
        from repro.corpus import PROFILE_NAMES, profile_spec
        for name in PROFILE_NAMES:
            spec = profile_spec(name)
            total = sum(t.fraction for t in spec.types)
            assert total == pytest.approx(1.0, abs=0.01), name

    def test_generic_is_default(self):
        from repro.corpus import default_spec, profile_spec
        assert [t.fraction for t in profile_spec("generic").types] == \
            [t.fraction for t in default_spec().types]

    def test_photographer_is_image_heavy(self):
        from repro.corpus import profile_spec
        spec = profile_spec("photographer")
        assert spec.by_name("jpg").fraction > 0.4
        assert spec.by_name("jpg").fraction > spec.by_name("pdf").fraction

    def test_writer_is_text_heavy(self):
        from repro.corpus import profile_spec
        spec = profile_spec("writer")
        text = sum(spec.by_name(t).fraction for t in ("txt", "md", "rtf"))
        assert text > 0.4

    def test_unknown_profile_rejected(self):
        from repro.corpus import profile_spec
        with pytest.raises(ValueError):
            profile_spec("gamer")

    def test_profile_corpus_generates_and_types_check(self):
        from repro.corpus import generate, profile_spec
        corpus = generate(5, 120, 10, spec=profile_spec("photographer"),
                          use_cache=False)
        counts = corpus.files_by_type()
        assert counts.get("jpg", 0) >= 40
        for row in corpus.files:
            assert identify_name(corpus.contents[row.rel_path]) \
                == row.type_name
