"""Legacy setuptools entry point.

Kept for fully-offline environments where PEP 517 editable installs are
unavailable (no `wheel` package): `python setup.py develop` mirrors
`pip install -e .`. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
